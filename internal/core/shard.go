package core

import "sync"

// This file implements the sharded round build (Options.Shards > 1): the
// expensive O(executors + tasks × replicas) index construction of an
// allocation round — executor-by-node indexes, locality postings, and
// availability counters — fans out to parallel workers over disjoint
// partitions, while the decision loop itself (Algorithms 1 and 2, amortized
// O(1) per grant) stays sequential. Determinism argument (DESIGN.md §14):
//
//   - Executors live in one global array in ascending executor-ID order,
//     shared read-only by every worker, so every pick-order contract
//     (lowest ID wins, app-reserved first) never sees shard boundaries.
//   - Each worker writes only its own partition: shard workers own their
//     shard's node/na arenas, job workers own disjoint job ranges of the
//     arenas, counter workers own disjoint task ranges. No locks, no
//     atomics; the fork-join WaitGroup publishes the writes.
//   - Within a shard, postings and executor lists are appended in the same
//     global (task order, executor ID) tie-stamp order the sequential
//     build produces, and the cross-shard merge (free-slot totals,
//     per-app satisfiability) happens sequentially in fixed shard order.
//
// The result is byte-identical to the one-shard build — and therefore to
// AllocateReference — for every shard count and every shard function; the
// differential battery in shard_test.go is the gate.

// shardOf maps a node ID to its build shard: Options.ShardFn when set
// (reduced modulo the shard count), else a jump consistent hash of the
// node ID.
//
//custody:noalloc
func (p *execPool) shardOf(node int) int {
	if p.nShards <= 1 {
		return 0
	}
	if p.shardFn != nil {
		s := p.shardFn(node) % p.nShards //custody:ignore noalloc dynamic shard-function dispatch; the contract requires ShardFn to be pure and the in-tree rack map is allocation-free
		if s < 0 {
			s += p.nShards
		}
		return s
	}
	return jumpHash(uint64(int64(node)), p.nShards)
}

// shardFor routes a node to its owning shard's index structures.
//
//custody:noalloc
func (p *execPool) shardFor(node int) *poolShard {
	if p.nShards <= 1 {
		return &p.shards[0]
	}
	return &p.shards[p.shardOf(node)]
}

// jumpHash is Lamping & Veach's jump consistent hash: O(ln buckets), no
// state, and only ~1/buckets of keys move when the bucket count changes —
// so growing the shard count relocates few nodes between shards.
//
//custody:noalloc
func jumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// chunkRange splits n items into `workers` contiguous ranges and returns
// the w-th as [lo, hi).
func chunkRange(n, workers, w int) (lo, hi int) {
	return n * w / workers, n * (w + 1) / workers
}

// buildShardsParallel fans the per-shard executor-index builds out to one
// goroutine per shard and joins them before anything reads the pool.
//
//custody:workerpool per-shard index builds write disjoint shard arenas; joined below
func (p *execPool) buildShardsParallel() {
	var wg sync.WaitGroup
	for s := 0; s < p.nShards; s++ {
		wg.Add(1)
		go p.buildShardWorker(&wg, s)
	}
	wg.Wait()
}

func (p *execPool) buildShardWorker(wg *sync.WaitGroup, s int) {
	defer wg.Done()
	p.buildShard(s)
}

// shardJobMeta locates one job's arena slices for the parallel fill
// workers: the owning app's arena index, the job's index within the app,
// and the job's task-arena offset. Computed by the sequential pre-pass.
type shardJobMeta struct {
	app int32
	k   int32
	tb  int32
}

// buildAppsSharded is the parallel counterpart of buildApps' sequential
// loop. Four steps:
//
//  1. a sequential pre-pass initializes per-app state and the arena
//     offsets the workers partition on (O(apps + jobs + tasks));
//  2. job workers fill the job/task arenas over disjoint job ranges;
//  3. occurrence-resolve workers look up each replica occurrence's
//     (shard, node index) exactly once over disjoint task ranges — total
//     work flat in the shard count — computing per-task availability as a
//     byproduct;
//  4. per-shard posting walks scan the resolved occurrences in global
//     order and append only their own shard's (a cheap integer compare per
//     occurrence, no hashing), then the satisfiability counters merge
//     sequentially.
//
//custody:workerpool arena fills, occurrence resolution, and posting walks write disjoint partitions; joined below
func (s *Session) buildAppsSharded(apps []AppDemand, nJobs, nTasks int) {
	st := &s.st
	p := st.pool

	s.jobMeta = grow(s.jobMeta, nJobs)
	s.occOff = grow(s.occOff, nTasks+1)
	jb, tb, occ := 0, 0, int32(0)
	for i := range apps {
		d := apps[i]
		a := &s.appArena[i]
		resBuf := a.resHeap[:0]
		*a = appState{
			d:       d,
			idx:     i,
			held:    d.Held,
			resHeap: resBuf,
			denJobs: d.TotalJobs + len(d.Jobs),
		}
		a.jobs = s.jobArena[jb : jb+len(d.Jobs)]
		denTasks := d.TotalTasks
		for k := range d.Jobs {
			tasks := d.Jobs[k].Tasks
			nt := len(tasks)
			s.jobMeta[jb] = shardJobMeta{app: int32(i), k: int32(k), tb: int32(tb)}
			jb++
			tb += nt
			denTasks += nt
			a.wantSum += nt
			for x := range tasks {
				s.occOff[tb-nt+x] = occ
				occ += int32(len(tasks[x].Nodes))
			}
		}
		a.denTasks = denTasks
		st.apps = append(st.apps, a)
		st.heap = append(st.heap, a)
	}
	s.occOff[nTasks] = occ
	s.occ = grow(s.occ, int(occ))

	nw := p.nShards
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		lo, hi := chunkRange(nJobs, nw, w)
		if lo == hi {
			continue
		}
		wg.Add(1)
		go s.fillJobsWorker(&wg, apps, lo, hi)
	}
	wg.Wait()

	for w := 0; w < nw; w++ {
		lo, hi := chunkRange(nTasks, nw, w)
		if lo == hi {
			continue
		}
		wg.Add(1)
		go s.resolveOccWorker(&wg, lo, hi)
	}
	wg.Wait()

	for sIdx := 0; sIdx < p.nShards; sIdx++ {
		wg.Add(1)
		go s.postShardWorker(&wg, sIdx, nTasks)
	}
	wg.Wait()

	// Sequential merge: roll per-task availability up into per-app
	// satisfiability, exactly the sum the one-shard build accumulates as
	// it posts.
	for i := 0; i < nTasks; i++ {
		t := &s.taskArena[i]
		if t.unresAvail > 0 {
			t.owner.satUnres++
		}
	}
}

// fillJobsWorker initializes the job/task arena entries for jobs [lo, hi).
// Writes stay inside the range's slice of the arenas; reads (the demand
// snapshot, the pre-initialized appState entries) are frozen for the phase.
func (s *Session) fillJobsWorker(wg *sync.WaitGroup, apps []AppDemand, lo, hi int) {
	defer wg.Done()
	for ji := lo; ji < hi; ji++ {
		m := s.jobMeta[ji]
		a := &s.appArena[m.app]
		jd := apps[m.app].Jobs[m.k]
		j := &s.jobArena[ji]
		j.d = jd
		j.remaining = len(jd.Tasks)
		j.tasks = s.taskArena[m.tb : int(m.tb)+len(jd.Tasks)]
		for x := range jd.Tasks {
			j.tasks[x] = taskState{d: &jd.Tasks[x], owner: a, job: j}
		}
	}
}

// resolveOccWorker resolves each replica occurrence of tasks [lo, hi) to a
// packed (shard << 32 | node index) — or -1 when the node has no executors
// — and counts the hits as the task's unreserved availability, duplicates
// included: the same accounting post() does inline. Shard membership needs
// no second hash downstream: a node with executors lives in exactly one
// shard's byNode index, so one lookup answers "where?" once and for all.
// Index lookups across all shards are read-only; writes stay inside the
// worker's own task range of the occ and task arenas.
func (s *Session) resolveOccWorker(wg *sync.WaitGroup, lo, hi int) {
	defer wg.Done()
	p := s.st.pool
	for i := lo; i < hi; i++ {
		t := &s.taskArena[i]
		off := s.occOff[i]
		avail := int32(0)
		for r, n := range t.d.Nodes {
			sIdx := p.shardOf(n)
			if ni, ok := p.shards[sIdx].byNode[n]; ok {
				s.occ[int(off)+r] = int64(sIdx)<<32 | int64(ni)
				avail++
			} else {
				s.occ[int(off)+r] = -1
			}
		}
		t.unresAvail = avail
	}
}

// postShardWorker is one shard's posting walk: it scans the resolved
// occurrences in global task order and registers the ones landing on its
// own shard's nodes, so each per-node (and per node-app) posting list
// comes out in exactly the order the sequential build's post() produces.
// The scan is an integer compare per occurrence — the expensive lookups
// already happened, once, in resolveOccWorker. It writes only its shard's
// arenas and reads only phase-frozen state.
func (s *Session) postShardWorker(wg *sync.WaitGroup, sIdx, nTasks int) {
	defer wg.Done()
	p := s.st.pool
	sh := &p.shards[sIdx]
	want := int64(sIdx) << 32
	for i := 0; i < nTasks; i++ {
		t := &s.taskArena[i]
		off, end := s.occOff[i], s.occOff[i+1]
		for _, pk := range s.occ[off:end] {
			if pk < 0 || pk&^0xffffffff != want {
				continue
			}
			ni := int32(pk)
			ns := &sh.nodes[ni]
			ns.posts = append(ns.posts, t)
			nai := sh.nodeApp(ni, t.owner.d.App)
			sh.na[nai].posts = append(sh.na[nai].posts, t)
		}
	}
}
