// Locality fallback for stale or partially wrong replica metadata.
package core

import "sort"

// FallbackNodes degrades a block's preferred-node list gracefully when some
// of its advertised replica holders are unusable (dead, suspended, or
// blacklisted):
//
//  1. the usable subset of the advertised replica nodes (node-local reads);
//  2. failing that, every usable node sharing a rack with an advertised
//     replica (rack-local reads — the copy crosses only the ToR switch);
//  3. failing that, nil — the caller should treat the task as
//     location-free and place it anywhere.
//
// locs may contain stale entries; usable decides, rackOf maps node → rack,
// and nodes is the cluster size. The result is sorted and duplicate-free.
func FallbackNodes(locs []int, usable func(int) bool, rackOf func(int) int, nodes int) []int {
	var local []int
	seen := map[int]bool{}
	for _, n := range locs {
		if n < 0 || n >= nodes || seen[n] {
			continue
		}
		seen[n] = true
		if usable(n) {
			local = append(local, n)
		}
	}
	if len(local) > 0 {
		sort.Ints(local)
		return local
	}
	racks := map[int]bool{}
	for n := range seen {
		racks[rackOf(n)] = true
	}
	var rackLocal []int
	for n := 0; n < nodes; n++ {
		if racks[rackOf(n)] && usable(n) {
			rackLocal = append(rackLocal, n)
		}
	}
	return rackLocal // ascending by construction; nil when no rack survives
}
