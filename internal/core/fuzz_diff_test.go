package core

import (
	"fmt"
	"testing"

	"repro/internal/hdfs"
)

// FuzzAllocateEquivalence is the gate on the incremental fast path: it
// decodes arbitrary bytes into an allocation instance and requires Allocate
// to produce a byte-identical Plan to AllocateReference (the pre-fast-path
// implementation frozen in reference.go) — cold, and across three
// consecutive rounds through one warm Session with the demand/pool state
// advanced between rounds the way the manager would. The seed corpus covers
// the Fig. 7 grid shapes (25/50/100 nodes, two executors per node, two
// apps). Run with `go test -fuzz=FuzzAllocateEquivalence` for continuous
// fuzzing; seeds run under plain `go test`.
func FuzzAllocateEquivalence(f *testing.F) {
	f.Add(fig7Seed(25, 2, 2, 4, 4))
	f.Add(fig7Seed(50, 2, 2, 4, 4))
	f.Add(fig7Seed(100, 2, 2, 6, 4))
	f.Add(fig7Seed(10, 3, 3, 2, 5))
	f.Add([]byte{3, 2, 2, 1, 0, 1, 2, 0, 1, 2})
	f.Add([]byte{8, 4, 1, 3, 3, 0, 0, 0, 0, 7, 7, 7})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		apps0, idle0 := decodeDiffInstance(data)
		optSets := []Options{DefaultOptions(), {FillToBudget: false}, {FillToBudget: true, Intra: FairnessIntra{}}}
		for oi, opts := range optSets {
			apps, idle := apps0, idle0
			sess := NewSession()
			for round := 0; round < 3; round++ {
				want := AllocateReference(apps, idle, opts)
				got := sess.Allocate(apps, idle, opts)
				ws, gs := fmt.Sprintf("%#v", want), fmt.Sprintf("%#v", got)
				if ws != gs {
					t.Fatalf("opts[%d] round %d: plans diverge\nreference: %s\nfast path: %s", oi, round, ws, gs)
				}
				apps, idle = advanceRound(apps, idle, want)
			}
		}
	})
}

// decodeDiffInstance maps fuzz bytes onto an allocation instance with unique
// app, job, and executor IDs (the documented contract of Allocate).
func decodeDiffInstance(data []byte) ([]AppDemand, []ExecInfo) {
	next := func(def, mod byte) int {
		if len(data) == 0 {
			return int(def)
		}
		v := data[0]
		data = data[1:]
		if mod == 0 {
			return int(v)
		}
		return int(v % mod)
	}
	nodes := next(4, 64) + 1
	nExec := next(6, 0)
	var idle []ExecInfo
	for i := 0; i < nExec; i++ {
		idle = append(idle, ExecInfo{ID: i, Node: next(0, byte(nodes)), Slots: next(1, 4) + 1})
	}
	nApps := next(1, 5) + 1
	var apps []AppDemand
	block := 0
	for a := 0; a < nApps; a++ {
		ad := AppDemand{
			App:        a,
			Budget:     next(2, byte(nExec%250+2)),
			Held:       next(0, 3),
			ExtraTasks: next(0, 4),
			LocalJobs:  next(0, 4),
			TotalJobs:  next(0, 6),
			LocalTasks: next(0, 8),
			TotalTasks: next(0, 16),
		}
		nJobs := next(1, 4)
		for j := 0; j < nJobs; j++ {
			jd := JobDemand{Job: j}
			nTasks := next(1, 6) + 1
			for k := 0; k < nTasks; k++ {
				nReps := next(1, 3) + 1
				var reps []int
				for r := 0; r < nReps; r++ {
					reps = append(reps, next(0, byte(nodes)))
				}
				jd.Tasks = append(jd.Tasks, TaskDemand{Task: k, Block: hdfs.BlockID(block), Nodes: reps})
				block++
			}
			ad.Jobs = append(ad.Jobs, jd)
		}
		apps = append(apps, ad)
	}
	return apps, idle
}

// fig7Seed encodes a Fig. 7-shaped grid instance as fuzz input. It mirrors
// decodeDiffInstance call-for-call: each emitted byte is consumed by exactly
// one next() and is chosen below the modulus so the decoded value is exact.
func fig7Seed(nodes, execsPerNode, apps, jobsPerApp, tasksPerJob int) []byte {
	var b []byte
	emit := func(v int) { b = append(b, byte(v)) }
	emit(nodes - 1) // nodes (mod 64)
	nExec := nodes * execsPerNode
	emit(nExec) // nExec (raw)
	for i := 0; i < nExec; i++ {
		emit(i % nodes) // exec node
		emit(1)         // slots-1 → 2 slots
	}
	emit(apps - 1) // nApps (mod 5)
	budget := nExec / apps
	for a := 0; a < apps; a++ {
		emit(budget % (nExec%250 + 2)) // Budget
		emit(0)                        // Held
		emit(2)                        // ExtraTasks
		emit(0)                        // LocalJobs
		emit(0)                        // TotalJobs
		emit(0)                        // LocalTasks
		emit(0)                        // TotalTasks
		emit(jobsPerApp % 4)           // nJobs
		for j := 0; j < jobsPerApp%4; j++ {
			emit(tasksPerJob%6 - 1) // nTasks-1
			for k := 0; k < tasksPerJob%6; k++ {
				emit(2) // 3 replicas
				for r := 0; r < 3; r++ {
					emit((a*31 + j*7 + k*3 + r) % nodes)
				}
			}
		}
	}
	return b
}

// advanceRound plays one manager round-trip: granted executors leave the
// idle pool (and count against Held), satisfied tasks leave the demand, and
// this round's jobs/tasks roll into the locality history.
func advanceRound(apps []AppDemand, idle []ExecInfo, plan Plan) ([]AppDemand, []ExecInfo) {
	granted := map[int]bool{}
	claimed := map[int]int{}
	localSat := map[[3]int]bool{}
	for _, as := range plan.Assignments {
		if !granted[as.Exec] {
			granted[as.Exec] = true
			claimed[as.App]++
		}
		if as.Local {
			localSat[[3]int{as.App, as.Job, as.Task}] = true
		}
	}
	var nextIdle []ExecInfo
	for _, e := range idle {
		if !granted[e.ID] {
			nextIdle = append(nextIdle, e)
		}
	}
	var nextApps []AppDemand
	for _, ad := range apps {
		nd := ad
		nd.Held += claimed[ad.App]
		nd.TotalJobs += len(ad.Jobs)
		nd.Jobs = nil
		for _, jd := range ad.Jobs {
			nd.TotalTasks += len(jd.Tasks)
			var rest []TaskDemand
			for _, td := range jd.Tasks {
				if localSat[[3]int{ad.App, jd.Job, td.Task}] {
					nd.LocalTasks++
				} else {
					rest = append(rest, td)
				}
			}
			if len(rest) == 0 {
				nd.LocalJobs++
			} else {
				nd.Jobs = append(nd.Jobs, JobDemand{Job: jd.Job, Tasks: rest})
			}
		}
		nextApps = append(nextApps, nd)
	}
	return nextApps, nextIdle
}
