package core

import (
	"testing"
	"testing/quick"

	"repro/internal/hdfs"
	"repro/internal/xrand"
)

func TestExactFig1(t *testing.T) {
	// Fig. 1: both applications can have their single job fully local.
	apps := []AppDemand{
		{App: 0, Budget: 2, Jobs: []JobDemand{{Job: 1, Tasks: []TaskDemand{task(1, 0, 0), task(2, 1, 1)}}}},
		{App: 1, Budget: 2, Jobs: []JobDemand{{Job: 1, Tasks: []TaskDemand{task(1, 2, 2), task(2, 3, 3)}}}},
	}
	idle := execs(4)
	if got := ExactJobLevelMaxMin(apps, idle); got != 1 {
		t.Fatalf("exact = %v, want 1", got)
	}
	if got := HeuristicJobLevelMaxMin(apps, idle); got != 1 {
		t.Fatalf("heuristic = %v, want 1 (Fig. 1 is solvable)", got)
	}
}

func TestExactContended(t *testing.T) {
	// Two apps, one single-task job each, both needing the only executor's
	// node: at most one app can have a local job → max-min = 0.
	apps := []AppDemand{
		{App: 0, Budget: 1, Jobs: []JobDemand{{Job: 1, Tasks: []TaskDemand{task(1, 0, 0)}}}},
		{App: 1, Budget: 1, Jobs: []JobDemand{{Job: 1, Tasks: []TaskDemand{task(1, 0, 0)}}}},
	}
	idle := []ExecInfo{{ID: 0, Node: 0}}
	if got := ExactJobLevelMaxMin(apps, idle); got != 0 {
		t.Fatalf("exact = %v, want 0", got)
	}
}

func TestExactBudgetBites(t *testing.T) {
	// One app, two single-task jobs, two executors, but budget 1:
	// only one job can be local → 1/2.
	apps := []AppDemand{{App: 0, Budget: 1, Jobs: []JobDemand{
		{Job: 1, Tasks: []TaskDemand{task(1, 0, 0)}},
		{Job: 2, Tasks: []TaskDemand{task(1, 1, 1)}},
	}}}
	idle := execs(2)
	if got := ExactJobLevelMaxMin(apps, idle); got != 0.5 {
		t.Fatalf("exact = %v, want 0.5", got)
	}
}

func TestExactMultiSlot(t *testing.T) {
	// One 2-slot executor serves both tasks of the job.
	apps := []AppDemand{{App: 0, Budget: 1, Jobs: []JobDemand{
		{Job: 1, Tasks: []TaskDemand{task(1, 0, 0), task(2, 1, 0)}},
	}}}
	idle := []ExecInfo{{ID: 0, Node: 0, Slots: 2}}
	if got := ExactJobLevelMaxMin(apps, idle); got != 1 {
		t.Fatalf("exact with multi-slot = %v, want 1", got)
	}
}

// Property: the heuristic never beats the exact optimum, and on small
// instances stays within a reasonable factor of it.
func TestQuickHeuristicVsExact(t *testing.T) {
	worstGap := 0.0
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		nodes := rng.IntRange(2, 4)
		var idle []ExecInfo
		for n := 0; n < nodes; n++ {
			idle = append(idle, ExecInfo{ID: n, Node: n})
		}
		nApps := rng.IntRange(1, 2)
		var apps []AppDemand
		block := 0
		for a := 0; a < nApps; a++ {
			ad := AppDemand{App: a, Budget: rng.IntRange(1, nodes)}
			for j := 0; j < rng.IntRange(1, 2); j++ {
				jd := JobDemand{Job: j}
				for k := 0; k < rng.IntRange(1, 2); k++ {
					jd.Tasks = append(jd.Tasks, TaskDemand{
						Task: k, Block: hdfs.BlockID(block), Nodes: rng.Sample(nodes, rng.IntRange(1, 2)),
					})
					block++
				}
				ad.Jobs = append(ad.Jobs, jd)
			}
			apps = append(apps, ad)
		}
		exact := ExactJobLevelMaxMin(apps, idle)
		heur := HeuristicJobLevelMaxMin(apps, idle)
		if heur > exact+1e-9 {
			return false // heuristic cannot beat the optimum
		}
		if gap := exact - heur; gap > worstGap {
			worstGap = gap
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
	t.Logf("worst exact-heuristic gap over instances: %.3f", worstGap)
}
