package core

import (
	"testing"
	"testing/quick"

	"repro/internal/hdfs"
	"repro/internal/xrand"
)

func TestExactFig1(t *testing.T) {
	// Fig. 1: both applications can have their single job fully local.
	apps := []AppDemand{
		{App: 0, Budget: 2, Jobs: []JobDemand{{Job: 1, Tasks: []TaskDemand{task(1, 0, 0), task(2, 1, 1)}}}},
		{App: 1, Budget: 2, Jobs: []JobDemand{{Job: 1, Tasks: []TaskDemand{task(1, 2, 2), task(2, 3, 3)}}}},
	}
	idle := execs(4)
	if got := ExactJobLevelMaxMin(apps, idle); got != 1 {
		t.Fatalf("exact = %v, want 1", got)
	}
	if got := HeuristicJobLevelMaxMin(apps, idle); got != 1 {
		t.Fatalf("heuristic = %v, want 1 (Fig. 1 is solvable)", got)
	}
}

func TestExactContended(t *testing.T) {
	// Two apps, one single-task job each, both needing the only executor's
	// node: at most one app can have a local job → max-min = 0.
	apps := []AppDemand{
		{App: 0, Budget: 1, Jobs: []JobDemand{{Job: 1, Tasks: []TaskDemand{task(1, 0, 0)}}}},
		{App: 1, Budget: 1, Jobs: []JobDemand{{Job: 1, Tasks: []TaskDemand{task(1, 0, 0)}}}},
	}
	idle := []ExecInfo{{ID: 0, Node: 0}}
	if got := ExactJobLevelMaxMin(apps, idle); got != 0 {
		t.Fatalf("exact = %v, want 0", got)
	}
}

func TestExactBudgetBites(t *testing.T) {
	// One app, two single-task jobs, two executors, but budget 1:
	// only one job can be local → 1/2.
	apps := []AppDemand{{App: 0, Budget: 1, Jobs: []JobDemand{
		{Job: 1, Tasks: []TaskDemand{task(1, 0, 0)}},
		{Job: 2, Tasks: []TaskDemand{task(1, 1, 1)}},
	}}}
	idle := execs(2)
	if got := ExactJobLevelMaxMin(apps, idle); got != 0.5 {
		t.Fatalf("exact = %v, want 0.5", got)
	}
}

func TestExactMultiSlot(t *testing.T) {
	// One 2-slot executor serves both tasks of the job.
	apps := []AppDemand{{App: 0, Budget: 1, Jobs: []JobDemand{
		{Job: 1, Tasks: []TaskDemand{task(1, 0, 0), task(2, 1, 0)}},
	}}}
	idle := []ExecInfo{{ID: 0, Node: 0, Slots: 2}}
	if got := ExactJobLevelMaxMin(apps, idle); got != 1 {
		t.Fatalf("exact with multi-slot = %v, want 1", got)
	}
}

// TestQuickTwoApproxAfterChurn extends the brute-force oracle beyond
// cold-start allocation: after a grant → revoke → re-grant cycle the
// residual instance must still satisfy both bounds. The revoke step mirrors
// the manager's ExecutorFaultHandler.OnExecutorFail semantics (core cannot
// import manager — it is a leaf layer): every executor on the failed node
// disappears, the tasks it served return to pending, and surviving claims
// count against the budget as Held. On the residual instance the two-level
// heuristic must not beat the exact optimum, and per app the Algorithm 2
// greedy must stay within a factor 2 of the optimal intra objective.
func TestQuickTwoApproxAfterChurn(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		nodes := rng.IntRange(2, 4)
		var idle []ExecInfo
		for n := 0; n < nodes; n++ {
			idle = append(idle, ExecInfo{ID: n, Node: n})
		}
		nApps := rng.IntRange(1, 2)
		var apps []AppDemand
		block := 0
		for a := 0; a < nApps; a++ {
			ad := AppDemand{App: a, Budget: rng.IntRange(1, nodes)}
			for j := 0; j < rng.IntRange(1, 2); j++ {
				jd := JobDemand{Job: j}
				for k := 0; k < rng.IntRange(1, 2); k++ {
					jd.Tasks = append(jd.Tasks, TaskDemand{
						Task: k, Block: hdfs.BlockID(block), Nodes: rng.Sample(nodes, rng.IntRange(1, 2)),
					})
					block++
				}
				ad.Jobs = append(ad.Jobs, jd)
			}
			apps = append(apps, ad)
		}

		// Grant.
		plan := Allocate(apps, idle, Options{FillToBudget: false})

		// Revoke: fail one node, dropping its executors and their work.
		failedNode := int(seed % uint64(nodes))
		nodeOf := map[int]int{}
		for _, e := range idle {
			nodeOf[e.ID] = e.Node
		}
		granted := map[int]bool{}
		survClaims := map[int]int{}    // app → surviving claimed executors
		survLocal := map[[3]int]bool{} // (app, job, task) still locally served
		for _, as := range plan.Assignments {
			if !granted[as.Exec] {
				granted[as.Exec] = true
				if nodeOf[as.Exec] != failedNode {
					survClaims[as.App]++
				}
			}
			if as.Local && nodeOf[as.Exec] != failedNode {
				survLocal[[3]int{as.App, as.Job, as.Task}] = true
			}
		}

		// Residual instance for the re-grant round.
		var resApps []AppDemand
		for _, ad := range apps {
			nd := ad
			nd.Held = ad.Held + survClaims[ad.App]
			nd.Jobs = nil
			for _, jd := range ad.Jobs {
				var rest []TaskDemand
				for _, td := range jd.Tasks {
					if !survLocal[[3]int{ad.App, jd.Job, td.Task}] {
						rest = append(rest, td)
					}
				}
				if len(rest) > 0 {
					nd.Jobs = append(nd.Jobs, JobDemand{Job: jd.Job, Tasks: rest})
				}
			}
			resApps = append(resApps, nd)
		}
		var resIdle []ExecInfo
		for _, e := range idle {
			if !granted[e.ID] && e.Node != failedNode {
				resIdle = append(resIdle, e)
			}
		}

		// Re-grant: optimality and 2-approximation bounds on the residual.
		exact := ExactJobLevelMaxMin(resApps, resIdle)
		heur := HeuristicJobLevelMaxMin(resApps, resIdle)
		if heur > exact+1e-9 {
			return false
		}
		for _, ad := range resApps {
			budget := ad.Budget - ad.Held
			if budget < 0 {
				budget = 0
			}
			greedy, _ := GreedyIntraObjective(ad.Jobs, resIdle, budget)
			optimal := OptimalIntraObjective(ad.Jobs, resIdle, budget)
			if greedy < optimal/2-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: the heuristic never beats the exact optimum, and on small
// instances stays within a reasonable factor of it.
func TestQuickHeuristicVsExact(t *testing.T) {
	worstGap := 0.0
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		nodes := rng.IntRange(2, 4)
		var idle []ExecInfo
		for n := 0; n < nodes; n++ {
			idle = append(idle, ExecInfo{ID: n, Node: n})
		}
		nApps := rng.IntRange(1, 2)
		var apps []AppDemand
		block := 0
		for a := 0; a < nApps; a++ {
			ad := AppDemand{App: a, Budget: rng.IntRange(1, nodes)}
			for j := 0; j < rng.IntRange(1, 2); j++ {
				jd := JobDemand{Job: j}
				for k := 0; k < rng.IntRange(1, 2); k++ {
					jd.Tasks = append(jd.Tasks, TaskDemand{
						Task: k, Block: hdfs.BlockID(block), Nodes: rng.Sample(nodes, rng.IntRange(1, 2)),
					})
					block++
				}
				ad.Jobs = append(ad.Jobs, jd)
			}
			apps = append(apps, ad)
		}
		exact := ExactJobLevelMaxMin(apps, idle)
		heur := HeuristicJobLevelMaxMin(apps, idle)
		if heur > exact+1e-9 {
			return false // heuristic cannot beat the optimum
		}
		if gap := exact - heur; gap > worstGap {
			worstGap = gap
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
	t.Logf("worst exact-heuristic gap over instances: %.3f", worstGap)
}
