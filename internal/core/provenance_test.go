package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/obsv"
	"repro/internal/xrand"
)

// recordLog runs one allocation round with a fresh flight recorder attached
// and returns the rendered decision log.
func recordLog(t *testing.T, apps []AppDemand, idle []ExecInfo, opts Options) string {
	t.Helper()
	fr := obsv.NewFlightRecorder(0, 0)
	opts.Observer = fr
	NewSession().Allocate(apps, idle, opts)
	var b strings.Builder
	if err := fr.WriteLog(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestProvenanceLogDeterministicUnderShuffle extends the shuffle contract
// to the observability layer: the flight recorder's decision log — every
// Algorithm 1 pick with its fairness keys, runner-ups, and grants — must be
// byte-identical no matter how the input slices are ordered. Provenance
// that shifted under incidental input order would make -explain output
// unreproducible and therefore useless as evidence. 20 trials with
// independently shuffled inputs, against both intra-app strategies.
func TestProvenanceLogDeterministicUnderShuffle(t *testing.T) {
	for _, opts := range []Options{DefaultOptions(), {FillToBudget: false}} {
		opts := opts
		t.Run(boolName("fill", opts.FillToBudget), func(t *testing.T) {
			gen := xrand.New(0xFACE)
			apps, idle := genDemands(gen, 6, 20)

			base := recordLog(t, apps, idle, opts)
			if base == "" {
				t.Fatal("decision log empty: observer not wired into Allocate")
			}
			if !strings.Contains(base, "decision 0 round=1") {
				t.Fatalf("log missing first decision:\n%s", base)
			}
			if !strings.Contains(base, "grant exec=") {
				t.Fatalf("log recorded no grants:\n%s", base)
			}

			shuf := gen.Fork("shuffle")
			for trial := 0; trial < 20; trial++ {
				as, es := shuffled(shuf, apps, idle)
				if got := recordLog(t, as, es, opts); got != base {
					t.Fatalf("trial %d: decision log differs under input shuffle\n got:\n%s\nwant:\n%s", trial, got, base)
				}
			}
		})
	}
}

// TestObserverDoesNotPerturbPlan pins that attaching an observer is purely
// passive: the plan with provenance recording must be byte-identical to
// the plan without it, and to the frozen reference.
func TestObserverDoesNotPerturbPlan(t *testing.T) {
	gen := xrand.New(0xD00D)
	apps, idle := genDemands(gen, 6, 20)
	opts := DefaultOptions()

	plain := fmt.Sprintf("%#v", NewSession().Allocate(apps, idle, opts))

	observed := opts
	observed.Observer = obsv.NewFlightRecorder(0, 0)
	withObs := fmt.Sprintf("%#v", NewSession().Allocate(apps, idle, observed))

	if plain != withObs {
		t.Fatalf("observer changed the plan\nplain: %s\n  obs: %s", plain, withObs)
	}
	if ref := fmt.Sprintf("%#v", AllocateReference(apps, idle, opts)); ref != withObs {
		t.Fatalf("observed plan diverges from reference\n ref: %s\n obs: %s", ref, withObs)
	}
}

// TestProvenanceGrantsMatchPlan cross-checks the recorded grants against
// the returned plan: every local-phase grant (job >= 0) must appear as an
// assignment in the plan, with matching executor.
func TestProvenanceGrantsMatchPlan(t *testing.T) {
	gen := xrand.New(0xAB1E)
	apps, idle := genDemands(gen, 6, 20)
	opts := DefaultOptions()
	fr := obsv.NewFlightRecorder(0, 0)
	opts.Observer = fr
	plan := NewSession().Allocate(apps, idle, opts)

	type slot struct{ app, exec, job, task int }
	planned := map[slot]bool{}
	for _, a := range plan.Assignments {
		planned[slot{a.App, a.Exec, a.Job, a.Task}] = true
	}
	local := 0
	for _, g := range fr.Grants() {
		if g.Job < 0 {
			continue
		}
		local++
		if !planned[slot{g.App, g.Exec, g.Job, g.Task}] {
			t.Fatalf("grant %+v has no matching assignment in the plan", g)
		}
	}
	if local == 0 {
		t.Fatal("no local grants recorded on a contended instance")
	}
}

func boolName(prefix string, v bool) string {
	if v {
		return prefix + "=true"
	}
	return prefix + "=false"
}
