//go:build custodymutate

package core

// mutateInvertFairness: the seeded bug is live. See mutate_off.go for the
// contract; internal/modelcheck's TestMutationSmoke must detect the
// resulting fairness-key monotonicity violation and shrink it to a minimal
// reproducer, proving the checker has teeth. Never set this tag in a
// production build.
const mutateInvertFairness = true
