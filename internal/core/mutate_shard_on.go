//go:build custodymutateshard

package core

// mutateShardTieStamp: the seeded sharding bug is live. See
// mutate_shard_off.go for the contract; internal/modelcheck's
// TestShardMutationSmoke must detect the resulting divergence from the
// reference allocation and shrink it to a minimal reproducer, proving the
// sharded differential battery has teeth. Never set this tag in a
// production build.
const mutateShardTieStamp = true
