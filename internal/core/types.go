// Package core implements Custody's data-aware resource-sharing algorithms
// (§III–§IV of the paper): the inter-application min-locality fairness rule
// (Algorithm 1), the intra-application priority allocation (Algorithm 2),
// and the exact/fractional comparators used in the theoretical analysis.
//
// The package is pure: it operates on snapshots of demand and idle
// executors and returns an allocation plan. The cluster manager
// (internal/manager) is responsible for applying plans to cluster state.
package core

import (
	"repro/internal/hdfs"
	"repro/internal/obsv"
)

// TaskDemand is one input task's data requirement: the block it reads and
// the nodes currently storing replicas of that block (the NameNode's answer,
// §IV-C).
type TaskDemand struct {
	Task  int // caller-defined task identifier
	Block hdfs.BlockID
	Nodes []int
	// Fallback marks Nodes as rack-local stand-ins rather than replica
	// holders: the NameNode's advertised holders were all unusable and the
	// preference degraded (FallbackNodes case 2). Purely provenance — the
	// allocator treats fallback nodes exactly like replica holders — but it
	// distinguishes local-block from rack-fallback grants in obsv.
	Fallback bool
	// Warm, when non-nil, parallels Nodes: Warm[i] marks Nodes[i] as
	// holding the block in its block cache when the demand was built. Like
	// Fallback it is purely provenance — the allocator's choice is
	// unchanged — but a grant landing on a warm node is tagged cache-hit
	// instead of local-block in obsv. Nil whenever the cache tier is
	// disabled (the default), which keeps the demand build allocation-free.
	Warm []bool
}

// warmOn reports whether the demand marked node as cache-warm.
//
//custody:noalloc
func (t *TaskDemand) warmOn(node int) bool {
	if t.Warm == nil {
		return false
	}
	for i, n := range t.Nodes {
		if n == node {
			return i < len(t.Warm) && t.Warm[i]
		}
	}
	return false
}

// JobDemand is one job's set of input-task demands. Jobs with fewer
// remaining input tasks get higher priority (Algorithm 2, §IV-B).
type JobDemand struct {
	Job   int // caller-defined job identifier
	Tasks []TaskDemand
}

// AppDemand is everything the allocator needs to know about one application.
type AppDemand struct {
	App    int
	Budget int // σ_i: total executors the app may hold
	Held   int // ζ_i: executors currently held (busy, not reallocatable)

	// Jobs are the app's pending jobs with unsatisfied input tasks.
	Jobs []JobDemand

	// ExtraTasks counts pending tasks with no data preference (e.g.,
	// shuffle tasks waiting for a slot). They carry no locality demand but
	// justify executors in the fill phase.
	ExtraTasks int

	// History feeds the fairness metric: locality already achieved by
	// finished or running jobs ("the percentage of local jobs it has
	// already achieved", Algorithm 1).
	LocalJobs, TotalJobs   int
	LocalTasks, TotalTasks int
}

// ExecInfo describes an idle executor available for allocation. Slots is
// its concurrent task capacity (0 is treated as 1): the paper's analytical
// model runs one task per executor (§III-A), while the testbed's executors
// have four cores each and therefore serve four tasks at once. A multi-slot
// executor can satisfy the locality of up to Slots tasks of the single
// application it is allocated to, and counts once against the executor
// budget σ_i.
type ExecInfo struct {
	ID    int
	Node  int
	Slots int
}

func (e ExecInfo) slots() int {
	if e.Slots <= 0 {
		return 1
	}
	return e.Slots
}

// Assignment allocates one idle executor to an application, optionally in
// service of a specific task (Local=true when the executor's node stores the
// task's block).
type Assignment struct {
	App   int
	Exec  int
	Node  int
	Job   int
	Task  int
	Block hdfs.BlockID
	Local bool
}

// Plan is the output of an allocation round.
type Plan struct {
	Assignments []Assignment
}

// ByApp groups the plan's executor IDs by application.
func (p Plan) ByApp() map[int][]int {
	out := map[int][]int{}
	for _, a := range p.Assignments {
		out[a.App] = append(out[a.App], a.Exec)
	}
	return out
}

// LocalCount returns the number of locality-carrying assignments.
func (p Plan) LocalCount() int {
	n := 0
	for _, a := range p.Assignments {
		if a.Local {
			n++
		}
	}
	return n
}

// Options tunes the allocator.
type Options struct {
	// FillToBudget enables Algorithm 2's final loop (lines 17–20): after
	// locality demands are met, leftover executors are handed out so
	// non-local tasks still have slots to run on. Unlike a literal reading
	// of the pseudocode — which would let the least-localized application
	// absorb the whole pool before anyone else allocates — the fill phase
	// here runs after *all* applications' locality passes and hands out at
	// most one executor per (app, pending task), preserving the algorithm's
	// intent without the hogging pathology (see DESIGN.md).
	FillToBudget bool
	// Intra selects the intra-application strategy; nil means Priority
	// (the paper's Algorithm 2).
	Intra IntraStrategy
	// Observer, when non-nil, receives decision provenance: one
	// obsv.Decision per Algorithm 1 pick and one obsv.Grant per executor
	// slot granted. The allocator's hot path stays allocation-free either
	// way; with a nil Observer the instrumentation is a single branch.
	Observer obsv.AllocObserver
	// Shards partitions the cluster's nodes into that many build shards
	// whose index structures (node → executor index, locality postings,
	// availability counters) are constructed on parallel goroutines inside
	// one allocation round. 0 or 1 keeps the fully sequential build. The
	// decision loop itself stays sequential either way, so the returned
	// plan is byte-identical for every shard count (see DESIGN.md §14).
	Shards int
	// ShardFn overrides the node → shard assignment (default: jump
	// consistent hash of the node ID). It must be pure and deterministic;
	// returned values are reduced modulo Shards. The cluster manager
	// installs a rack-affine map here so a whole rack lands in one shard.
	// The plan does not depend on the partition, only build parallelism
	// does.
	ShardFn func(node int) int
}

// DefaultOptions mirrors the paper's configuration.
func DefaultOptions() Options {
	return Options{FillToBudget: true}
}
