package driver

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// resilientDriver builds a small chaos-hardened driver with the failure-test
// workload submitted.
func resilientDriver(t *testing.T, tr trace.Tracer) (*Driver, int) {
	t.Helper()
	cfg := smallConfig(custodyMgr())
	cfg.EnableResilience()
	cfg.Tracer = tr
	d := New(cfg)
	sched := failureSchedule(13)
	for _, fs := range sched.Files {
		if _, err := d.CreateInput(fs.Name, fs.Size); err != nil {
			t.Fatal(err)
		}
	}
	a0 := d.RegisterApp("a0")
	a1 := d.RegisterApp("a1")
	d.Start()
	for i, sub := range sched.Subs {
		f, err := d.nn.Open(sched.Files[sub.FileIdx].Name)
		if err != nil {
			t.Fatal(err)
		}
		target := a0
		if sub.App == 1 {
			target = a1
		}
		d.SubmitJobAt(sub.At, target, workload.BuildJob(sched.Spec.Kind, i+1, f))
	}
	return d, len(sched.Subs)
}

// TestFailRecoverFailCycle is the regression test for repeated fail/recover
// cycles on the same node: the cycle must be idempotent per phase, jobs must
// still complete, and the invariants must hold at the end.
func TestFailRecoverFailCycle(t *testing.T) {
	rec := trace.NewRecorder()
	d, jobs := resilientDriver(t, rec)
	d.FailNodeAt(4, 2)
	d.RecoverNodeAt(10, 2)
	d.FailNodeAt(16, 2)
	d.RecoverNodeAt(22, 2)
	col := d.Run()
	if got := len(col.Jobs); got != jobs {
		t.Errorf("%d of %d jobs completed", got, jobs)
	}
	if got := rec.Count(trace.NodeFail); got != 2 {
		t.Errorf("NodeFail events = %d, want 2", got)
	}
	if got := rec.Count(trace.NodeRecover); got != 2 {
		t.Errorf("NodeRecover events = %d, want 2", got)
	}
	if err := d.Audit(); err != nil {
		t.Errorf("final audit: %v", err)
	}
}

// TestDoubleFailAndRecoverAreNoops: failing a dead node or recovering a
// healthy one must be absorbed with a fault-noop trace event, not crash or
// double-apply.
func TestDoubleFailAndRecoverAreNoops(t *testing.T) {
	rec := trace.NewRecorder()
	d, _ := resilientDriver(t, rec)
	d.RecoverNodeAt(3, 2) // recover of healthy node
	d.FailNodeAt(4, 2)
	d.FailNodeAt(5, 2) // double fail
	d.RecoverNodeAt(9, 2)
	d.Run()
	if got := rec.Count(trace.FaultNoop); got != 2 {
		t.Errorf("FaultNoop events = %d, want 2", got)
	}
	if got := rec.Count(trace.NodeFail); got != 1 {
		t.Errorf("NodeFail events = %d, want 1", got)
	}
	if err := d.Audit(); err != nil {
		t.Errorf("final audit: %v", err)
	}
}

// TestExecutorCrashRecovery: an executor dies mid-run and later rejoins; its
// tasks are retried, recovery times are recorded, and everything finishes.
func TestExecutorCrashRecovery(t *testing.T) {
	rec := trace.NewRecorder()
	d, jobs := resilientDriver(t, rec)
	d.eng.At(4, func() { d.InjectExecutorFail(3) })
	d.eng.At(12, func() { d.InjectExecutorRecover(3) })
	col := d.Run()
	if got := len(col.Jobs); got != jobs {
		t.Errorf("%d of %d jobs completed", got, jobs)
	}
	if rec.Count(trace.ExecFail) != 1 || rec.Count(trace.ExecRecover) != 1 {
		t.Errorf("exec fail/recover events = %d/%d, want 1/1",
			rec.Count(trace.ExecFail), rec.Count(trace.ExecRecover))
	}
	if col.TaskRetries == 0 {
		t.Error("executor crash caused no task retries")
	}
	if len(col.RecoverySec) == 0 {
		t.Error("no recovery times recorded")
	} else if col.MeanRecoverySec() <= 0 {
		t.Errorf("mean recovery %v, want > 0", col.MeanRecoverySec())
	}
	if err := d.Audit(); err != nil {
		t.Errorf("final audit: %v", err)
	}
}

// TestBlacklistExcludesFailingNode: with a threshold of one, a single
// executor crash blacklists its node for the window.
func TestBlacklistExcludesFailingNode(t *testing.T) {
	rec := trace.NewRecorder()
	d, jobs := resilientDriver(t, rec)
	d.cfg.BlacklistThreshold = 1
	d.eng.At(4, func() { d.InjectExecutorFail(5) })
	col := d.Run()
	if got := len(col.Jobs); got != jobs {
		t.Errorf("%d of %d jobs completed", got, jobs)
	}
	if col.BlacklistEvents == 0 {
		t.Error("no blacklist events despite threshold 1")
	}
	if rec.Count(trace.NodeBlacklist) != col.BlacklistEvents {
		t.Errorf("NodeBlacklist events = %d, counter = %d",
			rec.Count(trace.NodeBlacklist), col.BlacklistEvents)
	}
	if err := d.Audit(); err != nil {
		t.Errorf("final audit: %v", err)
	}
}

// TestReReplicationTracked: a permanent node failure triggers tracked
// re-replication flows that register replicas only on completion.
func TestReReplicationTracked(t *testing.T) {
	rec := trace.NewRecorder()
	d, jobs := resilientDriver(t, rec)
	d.FailNodeAt(5, 2)
	col := d.Run()
	if got := len(col.Jobs); got != jobs {
		t.Errorf("%d of %d jobs completed", got, jobs)
	}
	if col.ReplicasRestored == 0 {
		t.Error("no replicas restored after permanent node failure")
	}
	if got := rec.Count(trace.ReplicaRestored); got != col.ReplicasRestored {
		t.Errorf("ReplicaRestored events = %d, counter = %d", got, col.ReplicasRestored)
	}
	if ids := d.nn.PendingBlockIDs(); len(ids) != 0 {
		t.Errorf("%d blocks still have pending re-replications after the run", len(ids))
	}
	if err := d.Audit(); err != nil {
		t.Errorf("final audit: %v", err)
	}
}

// TestChaosOpsIdempotent: every fault operation absorbs a double apply and
// rejects a restore of untouched state.
func TestChaosOpsIdempotent(t *testing.T) {
	d, _ := resilientDriver(t, nil)
	checks := []struct {
		name           string
		apply, restore func() bool
	}{
		{"partition", func() bool { return d.InjectPartition([]int{0, 0, 0, 0, 1, 1, 1, 1}) }, d.HealPartition},
		{"link-degrade", func() bool { return d.InjectLinkDegrade(1, 0.1) }, func() bool { return d.RestoreLinks(1) }},
		{"slow-disk", func() bool { return d.InjectSlowDisk(1, 0.2) }, func() bool { return d.RestoreDisk(1) }},
		{"flaky-datanode", func() bool { return d.InjectDataNodeFlake(1) }, func() bool { return d.RestoreDataNode(1) }},
		{"stale-metadata", d.InjectStaleMetadata, d.RestoreMetadata},
		{"executor-crash", func() bool { return d.InjectExecutorFail(2) }, func() bool { return d.InjectExecutorRecover(2) }},
		{"node-flap", func() bool { return d.InjectNodeFail(4) }, func() bool { return d.InjectNodeRecover(4) }},
	}
	for _, c := range checks {
		if c.restore() {
			t.Errorf("%s: restore of untouched state reported applied", c.name)
		}
		if !c.apply() {
			t.Errorf("%s: first apply reported noop", c.name)
		}
		if c.apply() {
			t.Errorf("%s: double apply reported applied", c.name)
		}
		if !c.restore() {
			t.Errorf("%s: restore reported noop", c.name)
		}
		if c.restore() {
			t.Errorf("%s: double restore reported applied", c.name)
		}
	}
	d.Run()
	if err := d.Audit(); err != nil {
		t.Errorf("final audit: %v", err)
	}
}
