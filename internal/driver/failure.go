package driver

import (
	"fmt"
	"sort"

	"repro/internal/app"
	"repro/internal/trace"
)

// FailNodeAt schedules a whole-node failure at simulated time t: the node's
// executors die, tasks running on them are re-queued with their owning
// applications, the NameNode decommissions the DataNode, and re-replication
// streams from surviving replicas as tracked flows that re-register the new
// replica on completion. Blocks whose replicas all die become
// preference-free: tasks reading them regenerate input locally, a stand-in
// for recomputing lost partitions from lineage.
func (d *Driver) FailNodeAt(t float64, node int) {
	d.eng.At(t, func() { d.InjectNodeFail(node) })
}

// RecoverNodeAt schedules the node's return to service: its executors
// become allocatable again and its stored replicas become visible.
func (d *Driver) RecoverNodeAt(t float64, node int) {
	d.eng.At(t, func() { d.InjectNodeRecover(node) })
}

// InjectNodeFail takes a node out of service now. Idempotent: failing an
// already-failed node is a traced no-op returning false.
func (d *Driver) InjectNodeFail(node int) bool {
	if d.failedNodes[node] {
		d.faultNoop(node, -1)
		return false
	}
	d.failedNodes[node] = true
	d.failNode(node)
	return true
}

// InjectNodeRecover brings a failed node back now. Idempotent: recovering a
// healthy node is a traced no-op returning false.
func (d *Driver) InjectNodeRecover(node int) bool {
	if !d.failedNodes[node] {
		d.faultNoop(node, -1)
		return false
	}
	delete(d.failedNodes, node)
	d.cl.RecoverNode(node)
	d.nn.Recommission(node)
	d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.NodeRecover, App: -1, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: node})
	d.dispatch()
	return true
}

// faultNoop records an ignored fault injection (double-fail, recover of a
// healthy target, and similar), in the trace and the observability sinks.
func (d *Driver) faultNoop(node, exec int) {
	d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.FaultNoop, App: -1, Job: -1, Stage: -1, Task: -1, Exec: exec, Node: node})
	if d.cfg.Obsv != nil {
		d.cfg.Obsv.FaultNoop(node, exec)
	}
}

// runningTasksSorted returns the tasks with tracked attempts in
// deterministic order — required before any fault handling that creates
// flows or consumes randomness per task.
func (d *Driver) runningTasksSorted() []*app.Task {
	tasks := make([]*app.Task, 0, len(d.running))
	for t := range d.running {
		tasks = append(tasks, t)
	}
	sortTasks(tasks)
	return tasks
}

func (d *Driver) failNode(node int) {
	now := d.eng.Now()
	d.tr.Emit(trace.Event{Time: now, Kind: trace.NodeFail, App: -1, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: node})

	// 1. Kill attempts running on the node; collect their tasks. Attempts on
	// other nodes with in-flight fetches *from* this node are redirected to
	// local regeneration (their data source just vanished). Deterministic
	// task order: replacement flows acquire IDs in a fixed sequence.
	var requeue []*app.Task
	for _, task := range d.runningTasksSorted() {
		live := 0
		for _, at := range d.running[task] {
			if at.dead {
				continue
			}
			if at.exec.Node.ID != node {
				live++
				d.redirectFlows(at, node)
				continue
			}
			at.dead = true
			d.col.AttemptFailures++
			for _, f := range at.flows {
				d.fabric.Cancel(f)
			}
			if at.timer != nil {
				d.eng.Cancel(at.timer)
			}
			// The executor's slot accounting is reset by FailNode below;
			// do not FinishTask on a dying executor.
		}
		if live == 0 && task.State == app.TaskRunning {
			requeue = append(requeue, task)
			delete(d.running, task)
			d.recovering[task] = now
		}
	}

	// 2. Take the executors out of service.
	d.cl.FailNode(node)

	// 3. Abort re-replication transfers touching the dead node.
	d.abortReplTouching(node)

	// 4. Decommission the DataNode; stream each planned copy as a tracked
	// flow that commits the new replica with the NameNode on completion. A
	// Decommission error is surfaced as a replication stall, not dropped.
	copies, err := d.nn.Decommission(node)
	if err != nil {
		d.col.ReplicationStalls++
		d.tr.Emit(trace.Event{Time: now, Kind: trace.ReplicationStall, App: -1, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: node})
	}
	for _, cp := range copies {
		rf := &replFlow{cp: cp}
		rf.flow = d.fabric.Transfer(cp.From, cp.To, float64(cp.Size), func() { d.replicaRestored(rf) })
		d.repl = append(d.repl, rf)
	}

	// 5. Re-queue interrupted tasks with retry/backoff accounting.
	d.requeueFailed(requeue)
	d.managerCall(func() { d.cfg.Manager.OnNodeFail(d, node) })
	d.dispatch()
}

// redirectFlows replaces an attempt's in-flight fetches sourced at a dead
// node with local regeneration of the remaining bytes (lineage recompute).
func (d *Driver) redirectFlows(at *attempt, node int) {
	for i, f := range at.flows {
		if f.Done() || f.Src() != node {
			continue
		}
		rem := f.Remaining()
		d.fabric.Cancel(f)
		at.flows[i] = d.fabric.LocalRead(at.exec.Node.ID, rem, func() { d.readFinished(at) })
	}
}

// abortReplTouching cancels in-flight re-replication transfers whose source
// or target is the dead node and withdraws their pending registrations.
func (d *Driver) abortReplTouching(node int) {
	kept := d.repl[:0]
	for _, rf := range d.repl {
		if rf.cp.From != node && rf.cp.To != node {
			kept = append(kept, rf)
			continue
		}
		d.fabric.Cancel(rf.flow)
		d.nn.AbortReplica(rf.cp.Block, rf.cp.To)
		d.col.ReplicationStalls++
		d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.ReplicationStall, App: -1, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: node})
	}
	d.repl = kept
}

// replicaRestored completes one tracked re-replication: the transfer's bytes
// have arrived, so the replica becomes readable.
func (d *Driver) replicaRestored(rf *replFlow) {
	for i, r := range d.repl {
		if r == rf {
			d.repl = append(d.repl[:i], d.repl[i+1:]...)
			break
		}
	}
	if err := d.nn.CommitReplica(rf.cp.Block, rf.cp.To); err != nil {
		d.col.ReplicationStalls++
		d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.ReplicationStall, App: -1, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: rf.cp.To})
		return
	}
	d.replDone[rf.cp.Block]++
	d.col.ReplicasRestored++
	d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.ReplicaRestored, App: -1, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: rf.cp.To})
}

// sortTasks orders tasks deterministically (app, job, stage, index).
func sortTasks(ts []*app.Task) {
	sort.Slice(ts, func(i, j int) bool { return taskLess(ts[i], ts[j]) })
}

func taskLess(a, b *app.Task) bool {
	if a.Job.App.ID != b.Job.App.ID {
		return a.Job.App.ID < b.Job.App.ID
	}
	if a.Job.ID != b.Job.ID {
		return a.Job.ID < b.Job.ID
	}
	if a.Stage.ID != b.Stage.ID {
		return a.Stage.ID < b.Stage.ID
	}
	return a.Index < b.Index
}

// failNodeSanity panics if internal accounting drifted (used in tests).
func (d *Driver) failNodeSanity() error {
	for task, attempts := range d.running {
		live := 0
		for _, at := range attempts {
			if !at.dead {
				live++
			}
		}
		if live == 0 {
			return fmt.Errorf("task %v has no live attempts but is tracked", task)
		}
	}
	return nil
}
