package driver

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/trace"
)

// FailNodeAt schedules a whole-node failure at simulated time t: the node's
// executors die, tasks running on them are re-queued with their owning
// applications, the NameNode decommissions the DataNode, and re-replication
// traffic is charged to the network fabric (copies stream from surviving
// replicas). Blocks whose replicas all die become preference-free: tasks
// reading them regenerate input locally, a stand-in for recomputing lost
// partitions from lineage.
func (d *Driver) FailNodeAt(t float64, node int) {
	d.eng.At(t, func() { d.failNode(node) })
}

// RecoverNodeAt schedules the node's return to service: its executors
// become allocatable again and its stored replicas become visible.
func (d *Driver) RecoverNodeAt(t float64, node int) {
	d.eng.At(t, func() {
		d.cl.RecoverNode(node)
		d.nn.Recommission(node)
		d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.NodeRecover, App: -1, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: node})
		d.dispatch()
	})
}

func (d *Driver) failNode(node int) {
	now := d.eng.Now()
	d.tr.Emit(trace.Event{Time: now, Kind: trace.NodeFail, App: -1, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: node})

	// 1. Kill attempts running on the node and collect their tasks.
	var requeue []*app.Task
	for task, attempts := range d.running {
		alive := attempts[:0]
		for _, at := range attempts {
			if at.dead {
				continue
			}
			if at.exec.Node.ID != node {
				alive = append(alive, at)
				continue
			}
			at.dead = true
			for _, f := range at.flows {
				d.fabric.Cancel(f)
			}
			if at.timer != nil {
				d.eng.Cancel(at.timer)
			}
			// The executor's slot accounting is reset by FailNode below;
			// do not FinishTask on a dying executor.
		}
		if len(alive) == 0 && task.State == app.TaskRunning {
			requeue = append(requeue, task)
			delete(d.running, task)
		} else {
			d.running[task] = alive
		}
	}

	// 2. Take the executors out of service.
	d.cl.FailNode(node)

	// 3. Decommission the DataNode; charge re-replication to the fabric.
	copies, err := d.nn.Decommission(node)
	if err == nil {
		for _, cp := range copies {
			d.fabric.Transfer(cp.From, cp.To, float64(cp.Size), nil)
		}
	}

	// 4. Re-queue interrupted tasks (deterministic order: by job, index).
	sortTasks(requeue)
	byApp := map[cluster.AppID][]*app.Task{}
	for _, t := range requeue {
		t.State = app.TaskReady
		t.ReadyAt = now
		t.RanOnNode = -1
		t.RanLocal = false
		byApp[t.Job.App.ID] = append(byApp[t.Job.App.ID], t)
	}
	for _, a := range d.apps {
		if ts := byApp[a.ID]; len(ts) > 0 {
			d.scheds[a.ID].Submit(ts, now)
		}
	}
	d.managerCall(func() { d.cfg.Manager.OnNodeFail(d, node) })
	d.dispatch()
}

// sortTasks orders tasks deterministically (app, job, stage, index).
func sortTasks(ts []*app.Task) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && taskLess(ts[j], ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func taskLess(a, b *app.Task) bool {
	if a.Job.App.ID != b.Job.App.ID {
		return a.Job.App.ID < b.Job.App.ID
	}
	if a.Job.ID != b.Job.ID {
		return a.Job.ID < b.Job.ID
	}
	if a.Stage.ID != b.Stage.ID {
		return a.Stage.ID < b.Stage.ID
	}
	return a.Index < b.Index
}

// failNodeSanity panics if internal accounting drifted (used in tests).
func (d *Driver) failNodeSanity() error {
	for task, attempts := range d.running {
		live := 0
		for _, at := range attempts {
			if !at.dead {
				live++
			}
		}
		if live == 0 {
			return fmt.Errorf("task %v has no live attempts but is tracked", task)
		}
	}
	return nil
}
