package driver

import (
	"fmt"
	"math"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Driver runs one simulated cluster. It implements manager.Env.
type Driver struct {
	cfg Config

	eng    *sim.Engine
	fabric *netsim.Fabric
	nn     *hdfs.NameNode
	cl     *cluster.Cluster
	rng    *xrand.Rand
	col    *metrics.Collector

	apps   []*app.Application
	scheds map[cluster.AppID]scheduler.Scheduler

	tr        trace.Tracer
	hints     map[*app.Task]int
	running   map[*app.Task][]*attempt
	execReady map[int]float64       // executor ID → time it becomes usable
	prevOwner map[int]cluster.AppID // executor ID → last owner
	wake      *sim.Timer
	started   bool
	inManager bool // re-entrancy guard for manager callbacks

	// Chaos/resilience state. All maps stay empty (and cost nothing) until
	// faults are injected or resilience knobs are enabled.
	failedNodes map[int]bool               // nodes taken down via InjectNodeFail
	degraded    map[int]bool               // nodes with degraded links
	slowDisks   map[int]bool               // nodes with a slowed disk
	taskFails   map[*app.Task]int          // failures per task (backoff exponent)
	backoff     map[*app.Task]*sim.Timer   // tasks waiting out a retry delay
	badSrc      map[*app.Task]map[int]bool // replica sources this task failed against
	failTimes   map[int][]float64          // node → recent task-failure times
	blacklist   map[int]float64            // node → excluded-until time
	recovering  map[*app.Task]float64      // fault-interrupted task → fault time
	repl        []*replFlow                // tracked re-replication transfers
	replBase    map[hdfs.BlockID]int       // registered replicas at first audit, minus commits
	replDone    map[hdfs.BlockID]int       // committed re-replications per block
}

// replFlow tracks one in-flight re-replication transfer; on completion the
// new replica is committed with the NameNode.
type replFlow struct {
	cp   hdfs.ReplicaCopy
	flow *netsim.Flow
}

// attempt is one in-flight execution of a task (original or speculative).
type attempt struct {
	task  *app.Task
	exec  *cluster.Executor
	flows []*netsim.Flow
	timer *sim.Timer
	spec  bool

	launched  float64
	readDone  float64
	remaining int // pending fetch flows
	dead      bool
}

// New builds a driver. Panics on invalid configuration (programmer error).
func New(cfg Config) *Driver {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	eng := sim.NewEngine()
	rng := xrand.New(cfg.Seed)
	opts := []hdfs.Option{
		hdfs.WithBlockSize(cfg.BlockSize),
		hdfs.WithReplication(cfg.Replication),
		hdfs.WithRacks(cfg.RackSize),
	}
	if cfg.Placement != nil {
		opts = append(opts, hdfs.WithPolicy(cfg.Placement))
	}
	if cfg.CacheBytes > 0 {
		opts = append(opts, hdfs.WithBlockCache(cfg.CacheBytes, cfg.CachePolicy))
	}
	tr := cfg.Tracer
	if tr == nil {
		tr = trace.Nop{}
	}
	if cfg.Obsv != nil && cfg.Obsv.Clock == nil {
		cfg.Obsv.Clock = eng.Now // stamp records with simulated time
	}
	fabric := netsim.NewFabric(eng, cfg.Nodes, cfg.Net)
	cl := cluster.New(cfg.clusterConfig())
	for _, n := range cl.Nodes() {
		if n.Speed != 1 && n.Speed > 0 {
			fabric.DiskResource(n.ID).Capacity *= n.Speed
		}
	}
	return &Driver{
		tr:        tr,
		cfg:       cfg,
		eng:       eng,
		fabric:    fabric,
		nn:        hdfs.NewNameNode(cfg.Nodes, rng, opts...),
		cl:        cl,
		rng:       rng,
		col:       metrics.NewCollector(),
		scheds:    map[cluster.AppID]scheduler.Scheduler{},
		hints:     map[*app.Task]int{},
		running:   map[*app.Task][]*attempt{},
		execReady: map[int]float64{},
		prevOwner: map[int]cluster.AppID{},

		failedNodes: map[int]bool{},
		degraded:    map[int]bool{},
		slowDisks:   map[int]bool{},
		taskFails:   map[*app.Task]int{},
		backoff:     map[*app.Task]*sim.Timer{},
		badSrc:      map[*app.Task]map[int]bool{},
		failTimes:   map[int][]float64{},
		blacklist:   map[int]float64{},
		recovering:  map[*app.Task]float64{},
		replBase:    map[hdfs.BlockID]int{},
		replDone:    map[hdfs.BlockID]int{},
	}
}

// Engine exposes the event engine (examples and tests).
func (d *Driver) Engine() *sim.Engine { return d.eng }

// Fabric exposes the network fabric (chaos injection and tests).
func (d *Driver) Fabric() *netsim.Fabric { return d.fabric }

// Collector returns the metrics collector.
func (d *Driver) Collector() *metrics.Collector { return d.col }

// CreateInput stores a file in the simulated HDFS.
func (d *Driver) CreateInput(name string, size int64) (*hdfs.File, error) {
	return d.nn.Create(name, size)
}

// RegisterApp creates an application with its own task scheduler.
func (d *Driver) RegisterApp(name string) *app.Application {
	if d.started {
		panic("driver: RegisterApp after Start")
	}
	id := cluster.AppID(len(d.apps))
	a := app.NewApplication(id, name)
	d.apps = append(d.apps, a)
	var s scheduler.Scheduler
	switch d.cfg.Scheduler {
	case SchedFIFO:
		s = scheduler.NewFIFO()
	case SchedLocalityHard:
		s = scheduler.NewLocalityHard(d.nn)
	case SchedDelayTaskSet:
		s = scheduler.NewDelayTaskSet(d.nn, d.cfg.LocalityWait)
	case SchedQuincy:
		s = scheduler.NewQuincy(d.nn, func() []*cluster.Executor { return d.cl.Owned(id) })
	default:
		ds := scheduler.NewDelay(d.nn, d.cfg.LocalityWait)
		ds.RackWait = d.cfg.RackWait
		ds.Hint = func(t *app.Task) (int, bool) {
			e, ok := d.hints[t]
			return e, ok
		}
		s = ds
	}
	d.scheds[id] = s
	d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.AppRegister, App: int(id), Job: -1, Stage: -1, Task: -1, Exec: -1, Node: -1})
	return a
}

// Start registers the applications with the cluster manager. Call after all
// RegisterApp calls and before Run.
func (d *Driver) Start() {
	if d.started {
		panic("driver: Start called twice")
	}
	d.started = true
	d.cfg.Manager.Register(d)
}

// SubmitJobAt schedules a job submission at the given simulated time.
func (d *Driver) SubmitJobAt(at float64, a *app.Application, j *app.Job) {
	d.eng.At(at, func() { d.submitJob(a, j) })
}

// Run drives the simulation to completion and returns the collector.
func (d *Driver) Run() *metrics.Collector {
	if !d.started {
		d.Start()
	}
	d.eng.Run()
	if err := d.cl.Validate(); err != nil {
		panic(fmt.Sprintf("driver: cluster invariant broken after run: %v", err))
	}
	return d.col
}

// submitJob delivers a job to its application, lets the manager react
// (Custody allocates here, §V), and dispatches tasks.
func (d *Driver) submitJob(a *app.Application, j *app.Job) {
	now := d.eng.Now()
	a.AddJob(j, now)
	// Queue the ready input tasks with the app's scheduler.
	var ready []*app.Task
	for _, s := range j.Stages {
		if !s.Ready() {
			continue
		}
		for _, t := range s.Tasks {
			if t.State == app.TaskReady {
				ready = append(ready, t)
			}
		}
	}
	d.scheds[a.ID].Submit(ready, now)
	d.tr.Emit(trace.Event{Time: now, Kind: trace.JobSubmit, App: int(a.ID), Job: j.ID, Stage: -1, Task: -1, Exec: -1, Node: -1})
	d.managerCall(func() { d.cfg.Manager.OnJobSubmit(d, a, j) })
	d.dispatch()
}

// dispatch offers idle executors to their owners' schedulers until no more
// tasks launch, then arms the wake-up timer for locality-wait expiries.
func (d *Driver) dispatch() {
	now := d.eng.Now()
	progress := true
	for progress {
		progress = false
		for _, a := range d.apps {
			sched := d.scheds[a.ID]
			if sched.Pending() == 0 {
				continue
			}
			for _, e := range d.cl.Owned(a.ID) {
				if e.FreeSlots() <= 0 {
					continue
				}
				if d.execReady[e.ID] > now {
					continue // still starting up
				}
				if d.nodeExcluded(e.Node.ID, now) {
					continue // blacklisted after repeated failures
				}
				t := sched.Offer(e, now)
				if t == nil {
					continue
				}
				d.launch(t, e, false)
				progress = true
			}
		}
	}
	d.armWake()
}

// armWake schedules a dispatch at the earliest locality-wait expiry or
// executor startup completion.
func (d *Driver) armWake() {
	now := d.eng.Now()
	earliest := math.Inf(1)
	for _, a := range d.apps {
		if dl, ok := d.scheds[a.ID].NextDeadline(now); ok && dl < earliest {
			// Only relevant if the app has an idle executor to use then.
			earliest = dl
		}
	}
	for id, t := range d.execReady {
		if t > now && t < earliest && d.cl.Executor(id).Owner() != cluster.NoApp {
			earliest = t
		}
	}
	if math.IsInf(earliest, 1) {
		return
	}
	if d.wake != nil && !d.wake.Cancelled() && d.wake.Time() <= earliest && d.wake.Time() > now {
		return // an earlier or equal wake-up is already armed
	}
	if d.wake != nil {
		d.eng.Cancel(d.wake)
	}
	d.wake = d.eng.At(earliest, func() {
		d.wake = nil
		d.dispatch()
	})
}

// Kick runs one dispatch pass outside the usual event callbacks: idle
// executors are offered to their owners' schedulers until no more tasks
// launch. The model-based checker (internal/modelcheck) calls it after
// forcing an allocation round so granted executors pick up queued work.
func (d *Driver) Kick() { d.dispatch() }

// managerCall invokes a manager callback with re-entrancy protection.
func (d *Driver) managerCall(fn func()) {
	if d.inManager {
		return
	}
	d.inManager = true
	fn()
	d.inManager = false
}

// --- manager.Env implementation ---

// Now implements manager.Env.
func (d *Driver) Now() float64 { return d.eng.Now() }

// Cluster implements manager.Env.
func (d *Driver) Cluster() *cluster.Cluster { return d.cl }

// NameNode implements manager.Env.
func (d *Driver) NameNode() *hdfs.NameNode { return d.nn }

// Apps implements manager.Env.
func (d *Driver) Apps() []*app.Application { return d.apps }

// PendingInputTasks implements manager.Env.
func (d *Driver) PendingInputTasks(a *app.Application) []*app.Task {
	var out []*app.Task
	for _, t := range d.scheds[a.ID].PendingTasks() {
		if t.IsInput() {
			out = append(out, t)
		}
	}
	return out
}

// PendingCount implements manager.Env.
func (d *Driver) PendingCount(a *app.Application) int {
	return d.scheds[a.ID].Pending()
}

// Allocate implements manager.Env: assigns a free executor to an app,
// charging a startup delay when ownership changed hands.
func (d *Driver) Allocate(e *cluster.Executor, id cluster.AppID) {
	if err := d.cl.Allocate(e, id); err != nil {
		panic(err)
	}
	if d.cfg.ExecutorStartupSec > 0 {
		if prev, ok := d.prevOwner[e.ID]; !ok || prev != id {
			d.execReady[e.ID] = d.eng.Now() + d.cfg.ExecutorStartupSec
		}
	}
	d.prevOwner[e.ID] = id
	d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.ExecAlloc, App: int(id), Job: -1, Stage: -1, Task: -1, Exec: e.ID, Node: e.Node.ID})
}

// Release implements manager.Env.
func (d *Driver) Release(e *cluster.Executor) {
	owner := int(e.Owner())
	if err := d.cl.Release(e); err != nil {
		panic(err)
	}
	d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.ExecRelease, App: owner, Job: -1, Stage: -1, Task: -1, Exec: e.ID, Node: e.Node.ID})
}

// TryLaunch implements manager.Env: offer-based acceptance check.
func (d *Driver) TryLaunch(e *cluster.Executor, a *app.Application) bool {
	if e.Owner() != cluster.NoApp || e.FreeSlots() <= 0 {
		return false
	}
	t := d.scheds[a.ID].Offer(e, d.eng.Now())
	if t == nil {
		return false
	}
	d.Allocate(e, a.ID)
	d.launch(t, e, false)
	return true
}

// Metrics implements manager.Env.
func (d *Driver) Metrics() *metrics.Collector { return d.col }

// Schedule implements manager.Env.
func (d *Driver) Schedule(delay float64, fn func()) {
	d.eng.Schedule(delay, fn)
}

// Hint implements manager.Env: record a scheduling suggestion for a task.
func (d *Driver) Hint(t *app.Task, execID int) {
	d.hints[t] = execID
}
