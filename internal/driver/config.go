// Package driver wires the substrates — event engine, network fabric, HDFS,
// cluster, task schedulers, and a cluster manager — into a runnable
// simulation and collects the paper's metrics.
package driver

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/manager"
	"repro/internal/netsim"
	"repro/internal/obsv"
	"repro/internal/scheduler"
	"repro/internal/trace"
)

// SchedulerKind selects the per-application task scheduler.
type SchedulerKind string

// Scheduler kinds.
const (
	SchedDelay        SchedulerKind = "delay"
	SchedDelayTaskSet SchedulerKind = "delay-taskset"
	SchedFIFO         SchedulerKind = "fifo"
	SchedLocalityHard SchedulerKind = "locality-hard"
	SchedQuincy       SchedulerKind = "quincy"
)

// Config describes one simulation run. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	Seed uint64

	// Cluster shape (§VI-A1).
	Nodes            int
	ExecutorsPerNode int
	SlotsPerExecutor int
	RackSize         int

	// Storage.
	BlockSize   int64
	Replication int
	Placement   hdfs.PlacementPolicy // nil → random
	// ReplicaSelection picks the source of non-local reads (nil → random).
	ReplicaSelection hdfs.ReplicaSelector

	// Network and disk capacities.
	Net netsim.Config

	// Task scheduling.
	Scheduler    SchedulerKind
	LocalityWait float64
	// RackWait enables the RACK_LOCAL delay-scheduling level: after the
	// node-level wait expires, a task accepts rack-local executors for this
	// many additional seconds before going anywhere. Zero (the paper's
	// measured configuration) skips the level.
	RackWait float64

	// Manager is the cluster manager under test.
	Manager manager.Manager

	// MaxFanIn bounds the number of concurrent fetch flows per shuffle
	// task; sources are bundled beyond it.
	MaxFanIn int

	// RemoteReadCapBps caps a single remote HDFS block read (protocol
	// overhead keeps single-stream reads well below line rate; the paper
	// cites remote reads as "as much as 20 times slower than local data
	// access"). Zero disables the cap.
	RemoteReadCapBps float64

	// ExecutorStartupSec is charged when an executor changes owner
	// (container/JVM start). Zero disables the charge.
	ExecutorStartupSec float64

	// ComputeNoise is the half-width of the multiplicative jitter applied
	// to task compute times (0.1 → uniform in [0.9, 1.1]).
	ComputeNoise float64

	// SlowNodeFraction / SlowFactor make a deterministic share of nodes
	// run slower (compute and disk), producing persistent stragglers —
	// heterogeneity the paper's testbed did not have but real clusters do.
	SlowNodeFraction float64
	SlowFactor       float64

	// StragglerProb makes a task a straggler with this probability,
	// multiplying its compute time by StragglerFactor — the heavy tail
	// that speculative execution (§IV-B's mitigation hook) targets.
	StragglerProb   float64
	StragglerFactor float64

	// Resilience knobs (chaos layer). All default to zero, which reproduces
	// the pre-resilience behavior exactly: immediate re-queue, no backoff,
	// no blacklisting, instant connect failure. EnableResilience sets
	// Spark-like values.

	// MaxTaskRetries caps the exponential-backoff growth of retry delays:
	// the delay is RetryBackoffSec × 2^min(failures−1, MaxTaskRetries).
	// Retries beyond the cap continue at the maximum delay — abandoning a
	// task would break the simulator's jobs-complete contract; runaway
	// retries surface in the TaskRetries metric instead.
	MaxTaskRetries int
	// RetryBackoffSec is the base delay before re-queuing a failed task
	// attempt. Zero re-queues immediately.
	RetryBackoffSec float64
	// BlacklistThreshold excludes a node from scheduling after this many
	// task failures within BlacklistWindowSec (Spark excludeOnFailure).
	// Zero disables blacklisting.
	BlacklistThreshold int
	// BlacklistWindowSec is both the sliding window for counting failures
	// and the duration of the exclusion.
	BlacklistWindowSec float64
	// ConnectTimeoutSec is charged when a task attempt tries to read from
	// an unreachable replica source before the attempt fails.
	ConnectTimeoutSec float64
	// PartitionBps is the leak capacity of a network partition's choke
	// (InjectPartition). Zero picks a 1 Mbps trickle.
	PartitionBps float64

	// Block-cache tier knobs (zero-default, like the resilience knobs: all
	// zero reproduces the cacheless read path byte-for-byte).

	// CacheBytes attaches an in-memory block cache of this byte capacity to
	// every DataNode. Warm reads stream at the memory tier's bandwidth
	// (Net.MemoryBps) instead of disk; hits, misses, and evictions land in
	// the collector and grants on warm nodes are tagged cache-hit in obsv.
	// Zero disables the tier entirely.
	CacheBytes int64
	// CachePolicy selects the eviction policy: hdfs.CacheLRU (default when
	// empty) or hdfs.Cache2Q.
	CachePolicy hdfs.CachePolicy

	// Tracer receives timeline events (nil → discarded).
	Tracer trace.Tracer

	// Obsv receives decision provenance and invariant taps (nil → none).
	// The driver wires the hub's clock to simulated time and feeds it
	// Audit results and chaos fault no-ops; pass the same hub as the
	// manager's core Observer to capture allocation decisions too.
	Obsv *obsv.Hub

	// Speculation enables straggler re-execution (§IV-B mentions straggler
	// mitigation schemes as complementary).
	Speculation bool
	// SpeculationMultiplier: a running task is re-launched when it exceeds
	// this multiple of the stage's median completed duration.
	SpeculationMultiplier float64
	// SpeculationQuantile: fraction of the stage that must be complete
	// before speculation may trigger.
	SpeculationQuantile float64
}

// DefaultConfig mirrors the paper's testbed (§VI-A1): 100 nodes, 8 cores
// and 16 GB each, two executors per node, 128 MB blocks with 3 replicas,
// 2 Gbps uplink / 40 Gbps downlink, delay scheduling with a 3 s wait.
func DefaultConfig() Config {
	return Config{
		Seed:                  1,
		Nodes:                 100,
		ExecutorsPerNode:      2,
		SlotsPerExecutor:      4,
		RackSize:              20,
		BlockSize:             hdfs.DefaultBlockSize,
		Replication:           hdfs.DefaultReplication,
		Net:                   netsim.LinodeConfig(),
		Scheduler:             SchedDelay,
		LocalityWait:          scheduler.DefaultWait,
		MaxFanIn:              8,
		RemoteReadCapBps:      75e6,
		ExecutorStartupSec:    0.5,
		ComputeNoise:          0.1,
		SpeculationMultiplier: 1.5,
		SpeculationQuantile:   0.5,
	}
}

// EnableResilience turns on the chaos-hardening defaults: bounded retry
// backoff, failure blacklisting, and connect timeouts. Chaos experiments and
// tests call this; the plain paper reproduction leaves everything off.
func (c *Config) EnableResilience() {
	c.MaxTaskRetries = 4
	c.RetryBackoffSec = 0.5
	c.BlacklistThreshold = 3
	c.BlacklistWindowSec = 30
	c.ConnectTimeoutSec = 1
}

// EnableCache turns on the block-cache tier with the given per-node byte
// capacity and eviction policy (empty policy → LRU).
func (c *Config) EnableCache(bytes int64, policy hdfs.CachePolicy) {
	c.CacheBytes = bytes
	c.CachePolicy = policy
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("driver: Nodes = %d", c.Nodes)
	}
	if c.ExecutorsPerNode <= 0 {
		return fmt.Errorf("driver: ExecutorsPerNode = %d", c.ExecutorsPerNode)
	}
	if c.BlockSize <= 0 {
		return fmt.Errorf("driver: BlockSize = %d", c.BlockSize)
	}
	if c.Replication <= 0 {
		return fmt.Errorf("driver: Replication = %d", c.Replication)
	}
	if c.Manager == nil {
		return fmt.Errorf("driver: Manager is nil")
	}
	if c.Net.UplinkBps <= 0 || c.Net.DownlinkBps <= 0 || c.Net.DiskBps <= 0 {
		return fmt.Errorf("driver: non-positive capacity in Net config")
	}
	switch c.Scheduler {
	case SchedDelay, SchedDelayTaskSet, SchedFIFO, SchedLocalityHard, SchedQuincy:
	default:
		return fmt.Errorf("driver: unknown scheduler %q", c.Scheduler)
	}
	if c.CacheBytes < 0 {
		return fmt.Errorf("driver: CacheBytes = %d", c.CacheBytes)
	}
	if !hdfs.ValidCachePolicy(c.CachePolicy) {
		return fmt.Errorf("driver: unknown cache policy %q", c.CachePolicy)
	}
	return nil
}

// clusterConfig derives the cluster substrate configuration.
func (c Config) clusterConfig() cluster.Config {
	return cluster.Config{
		Nodes:            c.Nodes,
		ExecutorsPerNode: c.ExecutorsPerNode,
		SlotsPerExecutor: c.SlotsPerExecutor,
		RackSize:         c.RackSize,
		Spec:             cluster.LinodeSpec(),
		SlowNodeFraction: c.SlowNodeFraction,
		SlowFactor:       c.SlowFactor,
	}
}
