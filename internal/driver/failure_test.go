package driver

import (
	"testing"

	"repro/internal/app"
	"repro/internal/manager"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func failureSchedule(seed uint64) workload.Schedule {
	spec := workload.Spec{Kind: workload.Sort, Apps: 2, JobsPerApp: 3, MeanInterarrival: 3, DatasetFiles: 2}
	return workload.Generate(spec, xrand.New(seed))
}

// runWithFailures injects node failures mid-run and returns the driver.
func runWithFailures(t *testing.T, mgr manager.Manager, failAt []float64, nodes []int, recover bool) *Driver {
	t.Helper()
	cfg := smallConfig(mgr)
	d := New(cfg)
	sched := failureSchedule(13)
	for _, fs := range sched.Files {
		if _, err := d.CreateInput(fs.Name, fs.Size); err != nil {
			t.Fatal(err)
		}
	}
	a0 := d.RegisterApp("a0")
	a1 := d.RegisterApp("a1")
	d.Start()
	for i, sub := range sched.Subs {
		f, err := d.nn.Open(sched.Files[sub.FileIdx].Name)
		if err != nil {
			t.Fatal(err)
		}
		target := a0
		if sub.App == 1 {
			target = a1
		}
		d.SubmitJobAt(sub.At, target, workload.BuildJob(sched.Spec.Kind, i+1, f))
	}
	for i, at := range failAt {
		d.FailNodeAt(at, nodes[i])
		if recover {
			d.RecoverNodeAt(at+20, nodes[i])
		}
	}
	d.Run()
	return d
}

func TestNodeFailureJobsStillComplete(t *testing.T) {
	for _, mk := range []func() manager.Manager{
		custodyMgr, standaloneMgr,
		func() manager.Manager { return manager.NewYARN() },
	} {
		mgr := mk()
		d := runWithFailures(t, mgr, []float64{5.0}, []int{2}, false)
		col := d.Collector()
		if len(col.Jobs) != 6 {
			t.Fatalf("[%s] completed %d jobs after failure, want 6", mgr.Name(), len(col.Jobs))
		}
		if err := d.Cluster().Validate(); err != nil {
			t.Fatalf("[%s] %v", mgr.Name(), err)
		}
		if err := d.failNodeSanity(); err != nil {
			t.Fatalf("[%s] %v", mgr.Name(), err)
		}
		// The failed node must host nothing.
		for _, e := range d.Cluster().Node(2).Executors() {
			if e.Alive() {
				t.Fatalf("[%s] executor on failed node still alive", mgr.Name())
			}
			if e.Running() != 0 {
				t.Fatalf("[%s] task still on failed node", mgr.Name())
			}
		}
	}
}

func TestNodeFailureReReplicates(t *testing.T) {
	d := runWithFailures(t, custodyMgr(), []float64{4.0}, []int{1}, false)
	// Every block of every file must retain full replication (8-node
	// cluster, 3 replicas, one node lost).
	for _, name := range d.nn.Files() {
		f, _ := d.nn.Open(name)
		for _, b := range f.Blocks {
			locs := d.nn.Locations(b.ID)
			if len(locs) < 3 {
				t.Fatalf("block %d has %d live replicas after failure", b.ID, len(locs))
			}
			for _, n := range locs {
				if n == 1 {
					t.Fatalf("block %d lists the dead node", b.ID)
				}
			}
		}
	}
}

func TestNodeFailureAndRecovery(t *testing.T) {
	d := runWithFailures(t, custodyMgr(), []float64{4.0}, []int{3}, true)
	if len(d.Collector().Jobs) != 6 {
		t.Fatalf("jobs = %d", len(d.Collector().Jobs))
	}
	for _, e := range d.Cluster().Node(3).Executors() {
		if !e.Alive() {
			t.Fatal("executor still dead after recovery")
		}
	}
}

func TestMultipleFailures(t *testing.T) {
	d := runWithFailures(t, custodyMgr(), []float64{3.0, 6.0}, []int{0, 5}, false)
	if len(d.Collector().Jobs) != 6 {
		t.Fatalf("jobs = %d after two node failures", len(d.Collector().Jobs))
	}
	// Tasks that were interrupted re-ran: attempts counters must reflect it.
	retried := 0
	for _, a := range d.apps {
		for _, j := range a.Jobs {
			for _, s := range j.Stages {
				for _, task := range s.Tasks {
					if task.Attempts > 1 {
						retried++
					}
				}
			}
		}
	}
	t.Logf("retried tasks: %d", retried)
}

func TestFailureDeterministic(t *testing.T) {
	run := func() []float64 {
		d := runWithFailures(t, custodyMgr(), []float64{5.0}, []int{2}, true)
		return d.Collector().JobCompletionTimes()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("failure replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestYARNManagerRuns(t *testing.T) {
	spec := workload.Spec{Kind: workload.WordCount, Apps: 2, JobsPerApp: 3, MeanInterarrival: 2, DatasetFiles: 2}
	sched := workload.Generate(spec, xrand.New(21))
	col, err := RunSchedule(smallConfig(manager.NewYARN()), sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Jobs) != 6 {
		t.Fatalf("jobs = %d", len(col.Jobs))
	}
}

func TestQuincySchedulerRuns(t *testing.T) {
	cfg := smallConfig(custodyMgr())
	cfg.Scheduler = SchedQuincy
	spec := workload.Spec{Kind: workload.Sort, Apps: 2, JobsPerApp: 2, MeanInterarrival: 3, DatasetFiles: 1}
	col, err := RunSchedule(cfg, workload.Generate(spec, xrand.New(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Jobs) != 4 {
		t.Fatalf("jobs = %d", len(col.Jobs))
	}
}

func TestTaskSetSchedulerRuns(t *testing.T) {
	cfg := smallConfig(custodyMgr())
	cfg.Scheduler = SchedDelayTaskSet
	spec := workload.Spec{Kind: workload.Sort, Apps: 2, JobsPerApp: 2, MeanInterarrival: 3, DatasetFiles: 1}
	col, err := RunSchedule(cfg, workload.Generate(spec, xrand.New(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Jobs) != 4 {
		t.Fatalf("jobs = %d", len(col.Jobs))
	}
}

func TestRackWaitRuns(t *testing.T) {
	cfg := smallConfig(custodyMgr())
	cfg.RackWait = 1.5
	spec := workload.Spec{Kind: workload.WordCount, Apps: 2, JobsPerApp: 2, MeanInterarrival: 3, DatasetFiles: 1}
	col, err := RunSchedule(cfg, workload.Generate(spec, xrand.New(4)))
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Jobs) != 4 {
		t.Fatalf("jobs = %d", len(col.Jobs))
	}
}

func TestDriverEmitsTrace(t *testing.T) {
	rec := trace.NewRecorder()
	cfg := smallConfig(custodyMgr())
	cfg.Tracer = rec
	d := New(cfg)
	f, _ := d.CreateInput("in", 256<<20)
	a := d.RegisterApp("traced")
	d.Start()
	b := app.NewJob(1, "Sort", "in")
	in := b.AddInputStage("map", f.Blocks, app.TaskSpec{ComputeSec: 1, OutputBytes: 32 << 20})
	b.AddShuffleStage("reduce", []*app.Stage{in}, 2, 64<<20, app.TaskSpec{ComputeSec: 0.5})
	d.SubmitJobAt(1.0, a, b.Build())
	d.FailNodeAt(2.0, 7)
	d.Run()

	if rec.Count(trace.AppRegister) != 1 {
		t.Fatalf("app-register events = %d", rec.Count(trace.AppRegister))
	}
	if rec.Count(trace.JobSubmit) != 1 || rec.Count(trace.JobFinish) != 1 {
		t.Fatalf("job events = %d/%d", rec.Count(trace.JobSubmit), rec.Count(trace.JobFinish))
	}
	// 6 tasks at least (retries may add more launches).
	if rec.Count(trace.TaskLaunch) < 6 || rec.Count(trace.TaskFinish) < 6 {
		t.Fatalf("task events = %d/%d", rec.Count(trace.TaskLaunch), rec.Count(trace.TaskFinish))
	}
	if rec.Count(trace.NodeFail) != 1 {
		t.Fatalf("node-fail events = %d", rec.Count(trace.NodeFail))
	}
	if rec.Count(trace.ExecAlloc) == 0 {
		t.Fatal("no allocation events")
	}
	// Timeline must be time-ordered.
	last := -1.0
	for _, e := range rec.Events {
		if e.Time < last {
			t.Fatalf("trace out of order at %+v", e)
		}
		last = e.Time
	}
	if u := rec.Utilization(d.Cluster().TotalExecutors() * 4); u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
}

// TestUtilizationCountsRetriedAttempts runs a chaos schedule that kills
// running attempts and checks that BusySlotSeconds credits the killed
// attempts' occupancy: it must exceed the retry-blind pairing (the pre-fix
// implementation, reconstructed inline), which silently dropped the first
// attempt of every retried task.
func TestUtilizationCountsRetriedAttempts(t *testing.T) {
	rec := trace.NewRecorder()
	cfg := smallConfig(custodyMgr())
	cfg.Tracer = rec
	d := New(cfg)
	f, _ := d.CreateInput("in", 256<<20)
	a := d.RegisterApp("retry-heavy")
	d.Start()
	b := app.NewJob(1, "Sort", "in")
	in := b.AddInputStage("map", f.Blocks, app.TaskSpec{ComputeSec: 2, OutputBytes: 32 << 20})
	b.AddShuffleStage("reduce", []*app.Stage{in}, 2, 64<<20, app.TaskSpec{ComputeSec: 0.5})
	d.SubmitJobAt(1.0, a, b.Build())
	d.FailNodeAt(2.5, 3)
	d.FailNodeAt(3.0, 5)
	d.Run()

	if rec.Count(trace.TaskRetry) == 0 {
		t.Fatal("fixture produced no retries; the regression is not exercised")
	}
	// The retry-blind pairing this test guards against: launches keyed by
	// task identity only, so a re-launch overwrites the first attempt.
	type key struct{ app, job, stage, task int }
	launched := map[key]float64{}
	blind := 0.0
	for _, e := range rec.Events {
		k := key{e.App, e.Job, e.Stage, e.Task}
		switch e.Kind {
		case trace.TaskLaunch:
			launched[k] = e.Time
		case trace.TaskFinish:
			if t0, ok := launched[k]; ok {
				blind += e.Time - t0
				delete(launched, k)
			}
		}
	}
	if got := rec.BusySlotSeconds(); got <= blind {
		t.Fatalf("BusySlotSeconds = %v, not above retry-blind pairing %v: killed attempts' occupancy dropped", got, blind)
	}
}

// TestBudgetInvariantThroughoutRun replays the execution trace and checks
// that no application ever holds more executors than its fair share σ at
// any point in time, under the dynamic managers.
func TestBudgetInvariantThroughoutRun(t *testing.T) {
	for _, mk := range []func() manager.Manager{custodyMgr, func() manager.Manager { return manager.NewYARN() }} {
		mgr := mk()
		rec := trace.NewRecorder()
		cfg := smallConfig(mgr)
		cfg.Tracer = rec
		spec := workload.Spec{Kind: workload.Sort, Apps: 2, JobsPerApp: 4, MeanInterarrival: 2, DatasetFiles: 2}
		if _, err := RunSchedule(cfg, workload.Generate(spec, xrand.New(29))); err != nil {
			t.Fatal(err)
		}
		share := 8 * 2 / 2 // nodes × executors / apps
		owner := map[int]int{}
		held := map[int]int{}
		for _, e := range rec.Events {
			switch e.Kind {
			case trace.ExecAlloc:
				if prev, ok := owner[e.Exec]; ok {
					held[prev]--
				}
				owner[e.Exec] = e.App
				held[e.App]++
				if held[e.App] > share {
					t.Fatalf("[%s] app %d held %d executors (> share %d) at t=%.2f",
						mgr.Name(), e.App, held[e.App], share, e.Time)
				}
			case trace.ExecRelease:
				if prev, ok := owner[e.Exec]; ok {
					held[prev]--
					delete(owner, e.Exec)
				}
			}
		}
	}
}
