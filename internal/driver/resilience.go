package driver

import (
	"math"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/trace"
)

// retryDelay returns the backoff before the fails-th retry of a task:
// RetryBackoffSec × 2^min(fails−1, MaxTaskRetries). Zero when backoff is
// disabled — the pre-resilience immediate re-queue.
func (d *Driver) retryDelay(fails int) float64 {
	base := d.cfg.RetryBackoffSec
	if base <= 0 || fails <= 0 {
		return 0
	}
	exp := fails - 1
	if d.cfg.MaxTaskRetries > 0 && exp > d.cfg.MaxTaskRetries {
		exp = d.cfg.MaxTaskRetries
	}
	return base * math.Pow(2, float64(exp))
}

// requeueFailed re-queues tasks whose attempts were killed by a fault,
// applying retry accounting and exponential backoff. Tasks are processed in
// deterministic order; with backoff disabled they re-enter their schedulers
// immediately, exactly as the pre-resilience driver did.
func (d *Driver) requeueFailed(ts []*app.Task) {
	now := d.eng.Now()
	sortTasks(ts)
	immediate := map[cluster.AppID][]*app.Task{}
	for _, t := range ts {
		t.State = app.TaskReady
		t.ReadyAt = now
		t.RanOnNode = -1
		t.RanLocal = false
		d.taskFails[t]++
		d.col.TaskRetries++
		d.tr.Emit(trace.Event{Time: now, Kind: trace.TaskRetry, App: int(t.Job.App.ID),
			Job: t.Job.ID, Stage: t.Stage.ID, Task: t.Index, Exec: -1, Node: -1})
		delay := d.retryDelay(d.taskFails[t])
		if delay <= 0 {
			immediate[t.Job.App.ID] = append(immediate[t.Job.App.ID], t)
			continue
		}
		t := t
		d.backoff[t] = d.eng.Schedule(delay, func() {
			delete(d.backoff, t)
			t.ReadyAt = d.eng.Now()
			d.scheds[t.Job.App.ID].Submit([]*app.Task{t}, d.eng.Now())
			d.dispatch()
		})
	}
	for _, a := range d.apps {
		if ts := immediate[a.ID]; len(ts) > 0 {
			d.scheds[a.ID].Submit(ts, now)
		}
	}
}

// recordNodeFailure feeds the per-node failure blacklist (Spark
// excludeOnFailure-style): BlacklistThreshold failures within
// BlacklistWindowSec exclude the node from scheduling for the window.
func (d *Driver) recordNodeFailure(node int) {
	if d.cfg.BlacklistThreshold <= 0 {
		return
	}
	now := d.eng.Now()
	recent := d.failTimes[node][:0]
	for _, ts := range d.failTimes[node] {
		if now-ts <= d.cfg.BlacklistWindowSec {
			recent = append(recent, ts)
		}
	}
	recent = append(recent, now)
	d.failTimes[node] = recent
	if len(recent) < d.cfg.BlacklistThreshold {
		return
	}
	if until, ok := d.blacklist[node]; ok && until > now {
		return // already excluded
	}
	until := now + d.cfg.BlacklistWindowSec
	d.blacklist[node] = until
	d.failTimes[node] = d.failTimes[node][:0]
	d.col.BlacklistEvents++
	d.tr.Emit(trace.Event{Time: now, Kind: trace.NodeBlacklist, App: -1, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: node})
	// Without this wake-up, a cluster whose every schedulable node is
	// excluded would deadlock: nothing else re-triggers dispatch.
	d.eng.At(until, func() { d.dispatch() })
}

// nodeExcluded reports whether the node is currently blacklisted.
func (d *Driver) nodeExcluded(node int, now float64) bool {
	if len(d.blacklist) == 0 {
		return false
	}
	return d.blacklist[node] > now
}

// liveAttempts counts the non-dead attempts of a task.
func (d *Driver) liveAttempts(t *app.Task) int {
	n := 0
	for _, at := range d.running[t] {
		if !at.dead {
			n++
		}
	}
	return n
}

// sourceReadable reports whether a node can serve block reads right now.
func (d *Driver) sourceReadable(n int) bool {
	return !d.failedNodes[n] && d.nn.DataNode(n).Alive()
}

// failConnect charges the connect timeout against an attempt whose chosen
// replica source is unreachable, then fails the attempt.
func (d *Driver) failConnect(at *attempt, src int) {
	at.remaining = 1
	at.timer = d.eng.Schedule(d.cfg.ConnectTimeoutSec, func() { d.connectTimedOut(at, src) })
}

// connectTimedOut fails an attempt that could not reach its replica source:
// the source is remembered as bad for this task (so the retry tries another
// replica, falling back to local regeneration when none are left), the
// node's failure count feeds the blacklist, and the task re-queues with
// backoff.
func (d *Driver) connectTimedOut(at *attempt, src int) {
	if at.dead {
		return
	}
	at.dead = true
	t := at.task
	d.col.AttemptFailures++
	if d.badSrc[t] == nil {
		d.badSrc[t] = map[int]bool{}
	}
	d.badSrc[t][src] = true
	d.recordNodeFailure(src)
	if err := d.cl.FinishTask(at.exec); err != nil {
		panic(err)
	}
	if d.liveAttempts(t) == 0 && t.State == app.TaskRunning {
		delete(d.running, t)
		d.requeueFailed([]*app.Task{t})
	}
	d.afterSlotFreed(at.exec)
}
