package driver

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/hdfs"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// RunSchedule executes a workload schedule end to end under the configured
// manager and returns the collected metrics. The same schedule replayed with
// a different Config.Manager is the paper's comparison methodology (§VI-A2).
func RunSchedule(cfg Config, sched workload.Schedule) (*metrics.Collector, error) {
	d := New(cfg)
	files := make([]*hdfs.File, len(sched.Files))
	for i, fs := range sched.Files {
		f, err := d.CreateInput(fs.Name, fs.Size)
		if err != nil {
			return nil, fmt.Errorf("driver: preloading %s: %w", fs.Name, err)
		}
		files[i] = f
	}
	apps := make([]*app.Application, sched.Spec.Apps)
	for i := range apps {
		apps[i] = d.RegisterApp(fmt.Sprintf("%s-app%d", sched.Spec.Kind, i))
	}
	d.Start()
	for i, sub := range sched.Subs {
		j := workload.BuildJob(sched.Spec.Kind, i+1, files[sub.FileIdx])
		d.SubmitJobAt(sub.At, apps[sub.App], j)
	}
	return d.Run(), nil
}
