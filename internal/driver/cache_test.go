package driver

import (
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/hdfs"
	"repro/internal/metrics"
)

// runCachedJobs runs three identical jobs over one file with the cache tier
// on: the first warms the caches, the later two hit.
func runCachedJobs(t *testing.T, policy hdfs.CachePolicy) *Driver {
	t.Helper()
	cfg := smallConfig(custodyMgr())
	cfg.EnableCache(256<<20, policy)
	cfg.ReplicaSelection = &hdfs.CacheAwareSelector{}
	d := New(cfg)
	f, err := d.CreateInput("in", 256<<20) // 4 blocks
	if err != nil {
		t.Fatal(err)
	}
	a := d.RegisterApp("test")
	d.Start()
	for i, at := range []float64{1, 15, 30} {
		b := app.NewJob(i+1, "Sort", "in")
		in := b.AddInputStage("map", f.Blocks, app.TaskSpec{ComputeSec: 1, OutputBytes: 32 << 20})
		b.AddShuffleStage("reduce", []*app.Stage{in}, 2, 64<<20, app.TaskSpec{ComputeSec: 0.5})
		d.SubmitJobAt(at, a, b.Build())
	}
	d.Run()
	return d
}

func TestCachedRunHitsWarmReplicas(t *testing.T) {
	for _, pol := range []hdfs.CachePolicy{hdfs.CacheLRU, hdfs.Cache2Q} {
		d := runCachedJobs(t, pol)
		col := d.Collector()
		if len(col.Jobs) != 3 {
			t.Fatalf("[%s] finished jobs = %d, want 3", pol, len(col.Jobs))
		}
		// First pass misses, the repeat reads hit warm caches.
		if col.CacheMisses == 0 || col.CacheHits == 0 {
			t.Fatalf("[%s] hits=%d misses=%d, want both nonzero", pol, col.CacheHits, col.CacheMisses)
		}
		// Per-node accounting must sum to the aggregate.
		hits, misses, evs := 0, 0, 0
		for _, nc := range col.CacheByNode {
			hits += nc.Hits
			misses += nc.Misses
			evs += nc.Evictions
		}
		if hits != col.CacheHits || misses != col.CacheMisses || evs != col.CacheEvictions {
			t.Fatalf("[%s] per-node sums %d/%d/%d != aggregate %d/%d/%d",
				pol, hits, misses, evs, col.CacheHits, col.CacheMisses, col.CacheEvictions)
		}
		if r := col.CacheHitRatio(); r <= 0 || r >= 1 {
			t.Fatalf("[%s] hit ratio = %v", pol, r)
		}
		if err := d.Audit(); err != nil {
			t.Fatalf("[%s] audit after cached run: %v", pol, err)
		}
	}
}

func TestCachedRunDeterministic(t *testing.T) {
	a := runCachedJobs(t, hdfs.Cache2Q).Collector()
	b := runCachedJobs(t, hdfs.Cache2Q).Collector()
	if a.CacheHits != b.CacheHits || a.CacheMisses != b.CacheMisses || a.CacheEvictions != b.CacheEvictions {
		t.Fatalf("same-seed cached runs differ: %d/%d/%d vs %d/%d/%d",
			a.CacheHits, a.CacheMisses, a.CacheEvictions,
			b.CacheHits, b.CacheMisses, b.CacheEvictions)
	}
	aj := metrics.Summarize(a.JobCompletionTimes())
	bj := metrics.Summarize(b.JobCompletionTimes())
	if aj.Mean != bj.Mean {
		t.Fatalf("same-seed cached JCTs differ: %v vs %v", aj.Mean, bj.Mean)
	}
}

func TestCacheOffByDefault(t *testing.T) {
	d := runOneJob(t, custodyMgr())
	col := d.Collector()
	if col.CacheHits != 0 || col.CacheMisses != 0 || col.CacheEvictions != 0 || len(col.CacheByNode) != 0 {
		t.Fatalf("cache-off run recorded cache activity: %+v", col.CacheByNode)
	}
	if d.NameNode().CacheEnabled() {
		t.Fatal("default config built block caches")
	}
	if r := col.CacheHitRatio(); r != 0 {
		t.Fatalf("cache-off hit ratio = %v, want 0", r)
	}
}

// The audit's cache section must catch a cached block the node does not
// hold — the invariant the admit-on-serving-node rule exists to preserve.
func TestAuditCatchesCacheHeldViolation(t *testing.T) {
	d := runCachedJobs(t, hdfs.CacheLRU)
	if err := d.Audit(); err != nil {
		t.Fatalf("clean run audit: %v", err)
	}
	d.NameNode().Cache(0).Admit(hdfs.BlockID(9999), 1<<20)
	err := d.Audit()
	if err == nil || !strings.Contains(err.Error(), "caches block") {
		t.Fatalf("audit missed a cached-but-not-held block: %v", err)
	}
}

func TestCacheConfigValidate(t *testing.T) {
	cfg := smallConfig(custodyMgr())
	cfg.CacheBytes = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative CacheBytes accepted")
	}
	cfg = smallConfig(custodyMgr())
	cfg.EnableCache(64<<20, "arc")
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown cache policy accepted")
	}
	cfg = smallConfig(custodyMgr())
	cfg.EnableCache(64<<20, "")
	if err := cfg.Validate(); err != nil {
		t.Fatalf("empty policy (LRU default) rejected: %v", err)
	}
}
