package driver

import (
	"testing"

	"repro/internal/app"
	"repro/internal/hdfs"
	"repro/internal/manager"
	"repro/internal/netsim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// smallConfig returns a fast configuration for unit tests.
func smallConfig(mgr manager.Manager) Config {
	cfg := DefaultConfig()
	cfg.Nodes = 8
	cfg.RackSize = 4
	cfg.BlockSize = 64 << 20
	cfg.Net = netsim.Config{UplinkBps: 250e6, DownlinkBps: 5e9, DiskBps: 400e6}
	cfg.Manager = mgr
	cfg.ExecutorStartupSec = 0
	cfg.ComputeNoise = 0
	return cfg
}

func custodyMgr() manager.Manager { return manager.NewCustody() }

func standaloneMgr() manager.Manager {
	return manager.NewStandalone(xrand.New(7), true)
}

// submitOneJob runs a single two-stage job and returns the driver.
func runOneJob(t *testing.T, mgr manager.Manager) *Driver {
	t.Helper()
	d := New(smallConfig(mgr))
	f, err := d.CreateInput("in", 256<<20) // 4 blocks
	if err != nil {
		t.Fatal(err)
	}
	a := d.RegisterApp("test")
	d.Start()
	b := app.NewJob(1, "Sort", "in")
	in := b.AddInputStage("map", f.Blocks, app.TaskSpec{ComputeSec: 1, OutputBytes: 32 << 20})
	b.AddShuffleStage("reduce", []*app.Stage{in}, 2, 64<<20, app.TaskSpec{ComputeSec: 0.5})
	d.SubmitJobAt(1.0, a, b.Build())
	d.Run()
	return d
}

func TestSingleJobCompletesCustody(t *testing.T) {
	d := runOneJob(t, custodyMgr())
	col := d.Collector()
	if len(col.Jobs) != 1 {
		t.Fatalf("finished jobs = %d, want 1", len(col.Jobs))
	}
	j := col.Jobs[0]
	if j.Submit != 1.0 {
		t.Fatalf("submit = %v", j.Submit)
	}
	if j.Finish <= j.Submit {
		t.Fatalf("finish %v <= submit %v", j.Finish, j.Submit)
	}
	if j.TotalInput != 4 {
		t.Fatalf("input tasks = %d, want 4", j.TotalInput)
	}
	if j.InputStageSec <= 0 || j.InputStageSec > j.CompletionSec() {
		t.Fatalf("input stage sec = %v (JCT %v)", j.InputStageSec, j.CompletionSec())
	}
	// 4 map + 2 reduce tasks.
	if len(col.Tasks) != 6 {
		t.Fatalf("task records = %d, want 6", len(col.Tasks))
	}
}

func TestSingleJobCompletesStandalone(t *testing.T) {
	d := runOneJob(t, standaloneMgr())
	if len(d.Collector().Jobs) != 1 {
		t.Fatalf("finished jobs = %d", len(d.Collector().Jobs))
	}
}

func TestSingleJobCompletesOffer(t *testing.T) {
	d := runOneJob(t, manager.NewOffer())
	if len(d.Collector().Jobs) != 1 {
		t.Fatalf("finished jobs = %d", len(d.Collector().Jobs))
	}
}

func TestCustodyAchievesPerfectLocalityUncontended(t *testing.T) {
	d := runOneJob(t, custodyMgr())
	col := d.Collector()
	// One app alone in an 8-node cluster with 3 replicas per block: Custody
	// must place all four input tasks locally.
	if got := col.PctLocalTasks(); got != 1.0 {
		t.Fatalf("custody locality = %v, want 1.0", got)
	}
	if !col.Jobs[0].Perfect() {
		t.Fatal("job not perfectly local")
	}
}

func TestSchedulerDelayNonNegative(t *testing.T) {
	d := runOneJob(t, custodyMgr())
	for _, tr := range d.Collector().Tasks {
		if tr.SchedulerDelay < 0 {
			t.Fatalf("negative scheduler delay: %+v", tr)
		}
		if tr.Duration <= 0 {
			t.Fatalf("non-positive duration: %+v", tr)
		}
	}
}

func TestAllExecutorsIdleAfterRun(t *testing.T) {
	for _, mgr := range []manager.Manager{custodyMgr(), standaloneMgr(), manager.NewOffer()} {
		d := runOneJob(t, mgr)
		for _, e := range d.Cluster().Executors() {
			if e.Running() != 0 {
				t.Fatalf("[%s] executor %d still running after completion", mgr.Name(), e.ID)
			}
		}
	}
}

func TestMultiJobMultiAppSchedule(t *testing.T) {
	spec := workload.Spec{Kind: workload.Sort, Apps: 2, JobsPerApp: 3, MeanInterarrival: 2, DatasetFiles: 3}
	sched := workload.Generate(spec, xrand.New(11))
	for _, mgr := range []manager.Manager{custodyMgr(), standaloneMgr(), manager.NewOffer()} {
		cfg := smallConfig(mgr)
		cfg.BlockSize = 128 << 20
		col, err := RunSchedule(cfg, sched)
		if err != nil {
			t.Fatalf("[%s] %v", mgr.Name(), err)
		}
		if len(col.Jobs) != 6 {
			t.Fatalf("[%s] finished %d jobs, want 6", mgr.Name(), len(col.Jobs))
		}
		for _, j := range col.Jobs {
			if j.Finish < j.Submit {
				t.Fatalf("[%s] job finished before submit: %+v", mgr.Name(), j)
			}
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	spec := workload.Spec{Kind: workload.WordCount, Apps: 2, JobsPerApp: 2, MeanInterarrival: 2, DatasetFiles: 2}
	sched := workload.Generate(spec, xrand.New(5))
	run := func() []float64 {
		col, err := RunSchedule(smallConfig(custodyMgr()), sched)
		if err != nil {
			t.Fatal(err)
		}
		return col.JobCompletionTimes()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different job counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at job %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCustodyBeatsStandaloneOnLocality(t *testing.T) {
	spec := workload.Spec{Kind: workload.Sort, Apps: 2, JobsPerApp: 4, MeanInterarrival: 3, DatasetFiles: 4}
	sched := workload.Generate(spec, xrand.New(23))
	colC, err := RunSchedule(smallConfig(custodyMgr()), sched)
	if err != nil {
		t.Fatal(err)
	}
	colS, err := RunSchedule(smallConfig(standaloneMgr()), sched)
	if err != nil {
		t.Fatal(err)
	}
	if colC.PctLocalTasks() < colS.PctLocalTasks() {
		t.Fatalf("custody locality %.3f < standalone %.3f",
			colC.PctLocalTasks(), colS.PctLocalTasks())
	}
}

func TestSpeculationCompletesAndHelps(t *testing.T) {
	cfg := smallConfig(custodyMgr())
	cfg.Speculation = true
	cfg.ComputeNoise = 0.4
	spec := workload.Spec{Kind: workload.Sort, Apps: 1, JobsPerApp: 2, MeanInterarrival: 5, DatasetFiles: 1}
	sched := workload.Generate(spec, xrand.New(3))
	col, err := RunSchedule(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Jobs) != 2 {
		t.Fatalf("finished %d jobs, want 2", len(col.Jobs))
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err == nil {
		t.Fatal("nil manager accepted")
	}
	cfg.Manager = custodyMgr()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Nodes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("0 nodes accepted")
	}
	bad = cfg
	bad.Scheduler = "bogus"
	if err := bad.Validate(); err == nil {
		t.Fatal("bogus scheduler accepted")
	}
}

func TestFIFOSchedulerRuns(t *testing.T) {
	cfg := smallConfig(custodyMgr())
	cfg.Scheduler = SchedFIFO
	spec := workload.Spec{Kind: workload.WordCount, Apps: 1, JobsPerApp: 2, MeanInterarrival: 3, DatasetFiles: 1}
	col, err := RunSchedule(cfg, workload.Generate(spec, xrand.New(9)))
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(col.Jobs))
	}
}

func TestLocalityHardSchedulerRuns(t *testing.T) {
	cfg := smallConfig(custodyMgr())
	cfg.Scheduler = SchedLocalityHard
	spec := workload.Spec{Kind: workload.WordCount, Apps: 1, JobsPerApp: 2, MeanInterarrival: 3, DatasetFiles: 1}
	col, err := RunSchedule(cfg, workload.Generate(spec, xrand.New(9)))
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(col.Jobs))
	}
	// Hard constraints: every input task with replicas must be local.
	for _, tr := range col.Tasks {
		if tr.Input && !tr.Local {
			t.Fatalf("locality-hard ran a non-local input task: %+v", tr)
		}
	}
}

func TestOfferManagerCountsRejections(t *testing.T) {
	spec := workload.Spec{Kind: workload.Sort, Apps: 2, JobsPerApp: 3, MeanInterarrival: 2, DatasetFiles: 2}
	sched := workload.Generate(spec, xrand.New(31))
	col, err := RunSchedule(smallConfig(manager.NewOffer()), sched)
	if err != nil {
		t.Fatal(err)
	}
	if col.OfferRejections == 0 {
		t.Log("no offer rejections observed (acceptable on tiny clusters)")
	}
	if len(col.Jobs) != 6 {
		t.Fatalf("jobs = %d, want 6", len(col.Jobs))
	}
}

func TestExecutorStartupDelaysLaunch(t *testing.T) {
	cfg := smallConfig(custodyMgr())
	cfg.ExecutorStartupSec = 2.0
	d := New(cfg)
	f, _ := d.CreateInput("in", 64<<20)
	a := d.RegisterApp("x")
	d.Start()
	b := app.NewJob(1, "WordCount", "in")
	b.AddInputStage("map", f.Blocks, app.TaskSpec{ComputeSec: 0.1})
	d.SubmitJobAt(1.0, a, b.Build())
	col := d.Run()
	if len(col.Tasks) != 1 {
		t.Fatalf("tasks = %d", len(col.Tasks))
	}
	if col.Tasks[0].SchedulerDelay < 2.0 {
		t.Fatalf("scheduler delay %v < startup 2.0", col.Tasks[0].SchedulerDelay)
	}
}

// TestShuffleVolumeConservation checks that the bytes moved through the
// fabric match the job's data plan: the whole input is read once and each
// reduce task fetches its share of the map outputs.
func TestShuffleVolumeConservation(t *testing.T) {
	d := runOneJob(t, custodyMgr())
	// runOneJob: 4 input blocks × 64 MB = 256 MB read; 4 maps × 32 MB
	// output = 128 MB shuffled to 2 reduces.
	want := float64(256<<20 + 128<<20)
	got := d.fabric.TotalBytesMoved
	if got < want*0.999 || got > want*1.001 {
		t.Fatalf("bytes moved = %.0f, want ≈ %.0f", got, want)
	}
}

// TestReadTimesReflectLocality: local input reads must be faster than
// remote ones on an otherwise idle cluster.
func TestReadTimesReflectLocality(t *testing.T) {
	cfg := smallConfig(standaloneMgr())
	cfg.RemoteReadCapBps = 75e6
	spec := workload.Spec{Kind: workload.WordCount, Apps: 2, JobsPerApp: 4, MeanInterarrival: 2, DatasetFiles: 2}
	col, err := RunSchedule(cfg, workload.Generate(spec, xrand.New(41)))
	if err != nil {
		t.Fatal(err)
	}
	var localReads, remoteReads []float64
	for _, tr := range col.Tasks {
		if !tr.Input {
			continue
		}
		if tr.Local {
			localReads = append(localReads, tr.ReadSec)
		} else {
			remoteReads = append(remoteReads, tr.ReadSec)
		}
	}
	if len(localReads) == 0 || len(remoteReads) == 0 {
		t.Skip("no mix of local and remote reads in this run")
	}
	ml := mean(localReads)
	mr := mean(remoteReads)
	if ml >= mr {
		t.Fatalf("local reads (%.3fs) not faster than remote (%.3fs)", ml, mr)
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	if len(xs) == 0 {
		return 0
	}
	return s / float64(len(xs))
}

// TestEveryTaskRunsExactlyOnce (without speculation): task records must be
// unique per (app, job, stage, index).
func TestEveryTaskRunsExactlyOnce(t *testing.T) {
	spec := workload.Spec{Kind: workload.Sort, Apps: 2, JobsPerApp: 4, MeanInterarrival: 2, DatasetFiles: 2}
	col, err := RunSchedule(smallConfig(custodyMgr()), workload.Generate(spec, xrand.New(43)))
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ a, j, s, i int }
	seen := map[key]bool{}
	for _, tr := range col.Tasks {
		k := key{tr.App, tr.Job, tr.Stage, tr.Index}
		if seen[k] {
			t.Fatalf("task %+v recorded twice", k)
		}
		seen[k] = true
	}
}

// TestNetworkLatencyConfig: a fabric latency shifts every read.
func TestNetworkLatencyConfig(t *testing.T) {
	base := smallConfig(custodyMgr())
	lat := base
	lat.Net.LatencySec = 0.2
	run := func(cfg Config) float64 {
		spec := workload.Spec{Kind: workload.WordCount, Apps: 1, JobsPerApp: 2, MeanInterarrival: 4, DatasetFiles: 1}
		col, err := RunSchedule(cfg, workload.Generate(spec, xrand.New(3)))
		if err != nil {
			t.Fatal(err)
		}
		return mean(col.JobCompletionTimes())
	}
	if run(lat) <= run(base) {
		t.Fatal("adding network latency did not slow jobs down")
	}
}

func TestReplicaSelectionConfig(t *testing.T) {
	for _, sel := range []hdfs.ReplicaSelector{
		hdfs.RandomSelector{}, hdfs.ClosestSelector{}, hdfs.NewLeastLoadedSelector(),
	} {
		cfg := smallConfig(standaloneMgr())
		cfg.ReplicaSelection = sel
		spec := workload.Spec{Kind: workload.WordCount, Apps: 2, JobsPerApp: 2, MeanInterarrival: 2, DatasetFiles: 1}
		col, err := RunSchedule(cfg, workload.Generate(spec, xrand.New(6)))
		if err != nil {
			t.Fatalf("[%s] %v", sel.Name(), err)
		}
		if len(col.Jobs) != 4 {
			t.Fatalf("[%s] jobs = %d", sel.Name(), len(col.Jobs))
		}
	}
}
