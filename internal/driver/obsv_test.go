package driver

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/manager"
	"repro/internal/obsv"
	"repro/internal/workload"
)

// TestObsvTapsReachSinks pins the driver-side provenance taps end to end:
// a run under the Custody manager with a hub attached must stream
// allocation decisions and grants into the sinks, Audit results must flow
// through the audit tap, and an ignored fault injection must surface as a
// fault-noop record — all stamped with the engine's simulated clock.
func TestObsvTapsReachSinks(t *testing.T) {
	cfg := smallConfig(custodyMgr())
	hub := obsv.NewHub(0)
	cfg.Obsv = hub
	cfg.Manager.(*manager.Custody).Opts.Observer = hub
	var out strings.Builder
	hub.AddSink(obsv.NewJSONLSink(&out))

	d := New(cfg)
	f, err := d.CreateInput("in", 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	a := d.RegisterApp("app")
	d.Start()
	d.SubmitJobAt(0.5, a, workload.BuildJob(workload.Sort, 1, f))
	d.RecoverNodeAt(1.0, 0) // node 0 is healthy: a guaranteed fault no-op
	d.Run()
	if err := d.Audit(); err != nil {
		t.Fatalf("audit violations: %v", err)
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}

	kinds := map[string]int{}
	clocked := false
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		var r obsv.Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		kinds[r.Kind]++
		if r.T > 0 {
			clocked = true
		}
	}
	for _, want := range []string{"round-begin", "decision", "grant", "audit", "fault-noop"} {
		if kinds[want] == 0 {
			t.Fatalf("no %q records reached the sink (kinds: %v)", want, kinds)
		}
	}
	if !clocked {
		t.Fatal("no record carried a nonzero simulated timestamp: hub clock not wired to the engine")
	}
}
