package driver

import (
	"fmt"
	"strings"

	"repro/internal/app"
)

// Audit checks the cross-layer invariants that faults must never break:
//
//   - cluster slot conservation (cluster.Validate) and dead-executor state;
//   - task conservation: every task is exactly one of done, running with a
//     live attempt on a live executor, ready (queued with its scheduler or
//     waiting out a retry backoff), or waiting on an unready stage — no
//     task is lost or duplicated across those states;
//   - replica bounds: every block keeps at least one registered replica,
//     registered replicas never exceed the initial placement plus committed
//     re-replications, and pending re-replication targets are not dead;
//   - the fabric carries no flow whose endpoint is a failed node.
//
// Chaos tests run Audit after every fault application and reversal. It
// returns nil when all invariants hold, else an error listing every
// violation found. Iteration is deterministic throughout.
func (d *Driver) Audit() error {
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	if err := d.cl.Validate(); err != nil {
		fail("cluster: %v", err)
	}

	// Task conservation.
	now := d.eng.Now()
	for _, a := range d.apps {
		queued := map[*app.Task]bool{}
		for _, t := range d.scheds[a.ID].PendingTasks() {
			queued[t] = true
		}
		for _, j := range a.Jobs {
			for _, s := range j.Stages {
				for _, t := range s.Tasks {
					live := d.liveAttempts(t)
					_, waiting := d.backoff[t]
					switch t.State {
					case app.TaskDone:
						if live > 0 || queued[t] || waiting {
							fail("%v done but live=%d queued=%v backoff=%v", t, live, queued[t], waiting)
						}
					case app.TaskRunning:
						if live == 0 {
							fail("%v running with no live attempt", t)
						}
						if queued[t] || waiting {
							fail("%v running but also queued=%v backoff=%v", t, queued[t], waiting)
						}
						for _, at := range d.running[t] {
							if !at.dead && !at.exec.Alive() {
								fail("%v has a live attempt on dead executor %d", t, at.exec.ID)
							}
						}
					case app.TaskReady:
						if live > 0 {
							fail("%v ready but has %d live attempts", t, live)
						}
						if !queued[t] && !waiting {
							fail("%v ready but neither queued nor in backoff", t)
						}
					case app.TaskWaiting:
						if live > 0 || queued[t] || waiting {
							fail("%v waiting but live=%d queued=%v backoff=%v", t, live, queued[t], waiting)
						}
					}
				}
			}
		}
	}

	// Replica bounds. The baseline registration count is captured lazily the
	// first time a block is audited (minus any commits already made), so the
	// invariant registered ≤ baseline + commits holds from any start point.
	for _, name := range d.nn.Files() {
		f, err := d.nn.Open(name)
		if err != nil {
			fail("open %s: %v", name, err)
			continue
		}
		for _, b := range f.Blocks {
			reg := d.nn.RegisteredReplicas(b.ID)
			if reg < 1 {
				fail("block %d of %s has no registered replica (data lost)", b.ID, name)
			}
			if _, ok := d.replBase[b.ID]; !ok {
				d.replBase[b.ID] = reg - d.replDone[b.ID]
			}
			if limit := d.replBase[b.ID] + d.replDone[b.ID]; reg > limit {
				fail("block %d has %d registered replicas, max %d (duplicated registration)", b.ID, reg, limit)
			}
		}
	}
	for _, id := range d.nn.PendingBlockIDs() {
		for _, target := range d.nn.PendingReplicas(id) {
			if d.failedNodes[target] {
				fail("block %d has a pending replica on failed node %d", id, target)
			}
		}
	}

	// No flow touches a failed node.
	for _, f := range d.fabric.Flows() {
		if f.Done() {
			continue
		}
		if src := f.Src(); src >= 0 && d.failedNodes[src] {
			fail("flow sourced at failed node %d still active", src)
		}
		if dst := f.Dst(); dst >= 0 && d.failedNodes[dst] {
			fail("flow targeting failed node %d still active", dst)
		}
	}

	// Block-cache coherence (when the tier is enabled): bytes cached never
	// exceed capacity, every cached block is held by the node (admission
	// happens only on serving nodes, invalidation wherever replicas move or
	// die), and a failed node's cache is empty per the coherence rule —
	// node death drops the in-memory tier; flakes (Suspend) retain it.
	if d.nn.CacheEnabled() {
		for node := 0; node < d.nn.Nodes(); node++ {
			c := d.nn.Cache(node)
			if c.Used() > c.Capacity() {
				fail("node %d caches %d bytes over capacity %d", node, c.Used(), c.Capacity())
			}
			if d.failedNodes[node] && c.Len() > 0 {
				fail("failed node %d retains %d cached blocks", node, c.Len())
			}
			dn := d.nn.DataNode(node)
			for _, id := range c.Blocks() {
				if !dn.Holds(id) {
					fail("node %d caches block %d it does not hold", node, id)
				}
			}
		}
	}

	// Backoff bookkeeping (sorted for deterministic violation order).
	var boTasks []*app.Task
	for t := range d.backoff {
		boTasks = append(boTasks, t)
	}
	sortTasks(boTasks)
	for _, t := range boTasks {
		timer := d.backoff[t]
		if t.State != app.TaskReady {
			fail("%v in backoff but state %v", t, t.State)
		}
		if timer == nil || timer.Cancelled() || timer.Time() < now {
			fail("%v backoff timer stale", t)
		}
	}

	if d.cfg.Obsv != nil {
		d.cfg.Obsv.Audit(len(v), strings.Join(v, "; "))
	}
	if len(v) == 0 {
		return nil
	}
	return fmt.Errorf("audit at t=%.3f: %d violation(s):\n  %s", now, len(v), strings.Join(v, "\n  "))
}
