package driver

import (
	"repro/internal/app"
	"repro/internal/manager"
	"repro/internal/trace"
)

// Chaos injection operations beyond whole-node crashes. Every Inject*/
// Restore* pair is idempotent: applying a fault that is already in effect
// (or reverting one that is not) is a traced no-op returning false, so a
// fault schedule can never corrupt state by double application.

// InjectExecutorFail crashes one executor process — an OOM-killed JVM, not
// a machine loss. Its node keeps serving HDFS reads and shuffle data.
func (d *Driver) InjectExecutorFail(execID int) bool {
	e := d.cl.Executor(execID)
	if !e.Alive() {
		d.faultNoop(e.Node.ID, execID)
		return false
	}
	now := d.eng.Now()
	d.tr.Emit(trace.Event{Time: now, Kind: trace.ExecFail, App: -1, Job: -1, Stage: -1, Task: -1, Exec: execID, Node: e.Node.ID})
	var requeue []*app.Task
	for _, task := range d.runningTasksSorted() {
		live := 0
		for _, at := range d.running[task] {
			if at.dead {
				continue
			}
			if at.exec != e {
				live++
				continue
			}
			at.dead = true
			d.col.AttemptFailures++
			for _, f := range at.flows {
				d.fabric.Cancel(f)
			}
			if at.timer != nil {
				d.eng.Cancel(at.timer)
			}
			// Slot accounting is reset by FailExecutor below.
		}
		if live == 0 && task.State == app.TaskRunning {
			requeue = append(requeue, task)
			delete(d.running, task)
			d.recovering[task] = now
		}
	}
	d.cl.FailExecutor(e)
	d.recordNodeFailure(e.Node.ID)
	d.requeueFailed(requeue)
	if h, ok := d.cfg.Manager.(manager.ExecutorFaultHandler); ok {
		d.managerCall(func() { h.OnExecutorFail(d, execID) })
	}
	d.dispatch()
	return true
}

// InjectExecutorRecover restarts a crashed executor. No-op (false) when the
// executor is alive or its whole node is down (node recovery handles that).
func (d *Driver) InjectExecutorRecover(execID int) bool {
	e := d.cl.Executor(execID)
	if e.Alive() || d.failedNodes[e.Node.ID] {
		d.faultNoop(e.Node.ID, execID)
		return false
	}
	d.cl.RecoverExecutor(e)
	d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.ExecRecover, App: -1, Job: -1, Stage: -1, Task: -1, Exec: execID, Node: e.Node.ID})
	if h, ok := d.cfg.Manager.(manager.ExecutorFaultHandler); ok {
		d.managerCall(func() { h.OnExecutorRecover(d, execID) })
	}
	d.dispatch()
	return true
}

// InjectPartition splits the network into groups (groups[node] = group id):
// flows crossing the boundary are throttled to a trickle (Config.PartitionBps,
// default 1 Mbps). No-op (false) while a partition is already in effect.
func (d *Driver) InjectPartition(groups []int) bool {
	if d.fabric.Partitioned() {
		d.faultNoop(-1, -1)
		return false
	}
	bps := d.cfg.PartitionBps
	if bps <= 0 {
		bps = 1e6
	}
	d.fabric.SetPartition(groups, bps)
	d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.NetPartition, App: -1, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: -1})
	return true
}

// HealPartition removes the active partition. No-op (false) without one.
func (d *Driver) HealPartition() bool {
	if !d.fabric.Partitioned() {
		d.faultNoop(-1, -1)
		return false
	}
	d.fabric.ClearPartition()
	d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.NetHeal, App: -1, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: -1})
	return true
}

// InjectLinkDegrade scales a node's up/downlink to factor × nominal
// (0 < factor < 1). No-op (false) if the node's links are already degraded.
func (d *Driver) InjectLinkDegrade(node int, factor float64) bool {
	if d.degraded[node] || factor <= 0 || factor >= 1 {
		d.faultNoop(node, -1)
		return false
	}
	d.degraded[node] = true
	d.fabric.ScaleLinks(node, factor)
	d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.LinkDegrade, App: -1, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: node})
	return true
}

// RestoreLinks restores a degraded node's links to nominal capacity.
func (d *Driver) RestoreLinks(node int) bool {
	if !d.degraded[node] {
		d.faultNoop(node, -1)
		return false
	}
	delete(d.degraded, node)
	d.fabric.ScaleLinks(node, 1)
	d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.LinkRestore, App: -1, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: node})
	return true
}

// InjectSlowDisk scales a node's disk bandwidth to factor × nominal — a
// slow-disk straggler. No-op (false) if the disk is already slowed.
func (d *Driver) InjectSlowDisk(node int, factor float64) bool {
	if d.slowDisks[node] || factor <= 0 || factor >= 1 {
		d.faultNoop(node, -1)
		return false
	}
	d.slowDisks[node] = true
	d.fabric.ScaleDisk(node, factor)
	d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.DiskSlow, App: -1, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: node})
	return true
}

// RestoreDisk restores a slowed disk to nominal bandwidth.
func (d *Driver) RestoreDisk(node int) bool {
	if !d.slowDisks[node] {
		d.faultNoop(node, -1)
		return false
	}
	delete(d.slowDisks, node)
	d.fabric.ScaleDisk(node, 1)
	d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.DiskRestore, App: -1, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: node})
	return true
}

// InjectDataNodeFlake suspends a DataNode: its process is up but stops
// serving block reads and drops out of fresh Locations answers; its disk
// contents survive. No-op (false) if already suspended or the node is down.
func (d *Driver) InjectDataNodeFlake(node int) bool {
	if !d.nn.Suspend(node) {
		d.faultNoop(node, -1)
		return false
	}
	d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.DataNodeFlake, App: -1, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: node})
	return true
}

// RestoreDataNode resumes a flaky DataNode.
func (d *Driver) RestoreDataNode(node int) bool {
	if !d.nn.Resume(node) {
		d.faultNoop(node, -1)
		return false
	}
	d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.DataNodeResume, App: -1, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: node})
	return true
}

// InjectStaleMetadata freezes the NameNode's Locations answers at a
// snapshot of the current state: failures and recoveries during the window
// are invisible to schedulers and the manager. No-op (false) if a window is
// already open.
func (d *Driver) InjectStaleMetadata() bool {
	if !d.nn.BeginStale() {
		d.faultNoop(-1, -1)
		return false
	}
	d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.MetaStale, App: -1, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: -1})
	return true
}

// RestoreMetadata closes the stale window; Locations answers fresh again.
func (d *Driver) RestoreMetadata() bool {
	if !d.nn.EndStale() {
		d.faultNoop(-1, -1)
		return false
	}
	d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.MetaFresh, App: -1, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: -1})
	return true
}
