package driver

import (
	"sort"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// launch starts one attempt of a task on an executor: input read or shuffle
// fetch over the fabric, then compute, then completion.
func (d *Driver) launch(t *app.Task, e *cluster.Executor, spec bool) {
	now := d.eng.Now()
	if err := d.cl.StartTask(e); err != nil {
		panic(err)
	}
	at := &attempt{task: t, exec: e, spec: spec, launched: now}
	d.running[t] = append(d.running[t], at)
	if faultAt, ok := d.recovering[t]; ok {
		d.col.RecoverySec = append(d.col.RecoverySec, now-faultAt)
		delete(d.recovering, t)
	}
	if !spec {
		t.State = app.TaskRunning
		t.LaunchedAt = now
		t.RanOnNode = e.Node.ID
	}
	t.Attempts++
	delete(d.hints, t)
	d.tr.Emit(trace.Event{Time: now, Kind: trace.TaskLaunch, App: int(t.Job.App.ID),
		Job: t.Job.ID, Stage: t.Stage.ID, Task: t.Index, Exec: e.ID, Node: e.Node.ID})

	node := e.Node.ID
	if t.IsInput() {
		d.nn.RecordAccess(t.Block)
		locs := d.nn.Locations(t.Block)
		// Drop replica sources this task already failed against (stale
		// metadata or flaky DataNodes); the retry tries the next one.
		if bad := d.badSrc[t]; len(bad) > 0 {
			kept := locs[:0]
			for _, n := range locs {
				if !bad[n] {
					kept = append(kept, n)
				}
			}
			locs = kept
		}
		local := false
		for _, n := range locs {
			if n == node {
				local = true
				break
			}
		}
		if local && !d.sourceReadable(node) {
			// The local DataNode is flaking (stale metadata still lists
			// it); read a surviving replica remotely instead.
			local = false
			kept := locs[:0]
			for _, n := range locs {
				if n != node {
					kept = append(kept, n)
				}
			}
			locs = kept
		}
		if !spec {
			t.RanLocal = local
		}
		bytes := float64(t.InputBytes)
		at.remaining = 1
		done := func() { d.readFinished(at) }
		if local || len(locs) == 0 {
			// No reachable replica left → regenerate locally (lineage).
			tier := netsim.TierDisk
			if local && d.cacheTouch(node, t.Block, t.InputBytes) {
				// Warm in the reader's own cache: stream from memory. A
				// lineage regeneration (!local) never consults the cache —
				// the node holds no replica to have cached.
				tier = netsim.TierMemory
			}
			at.flows = append(at.flows, d.fabric.LocalReadTier(node, bytes, tier, done))
			return
		}
		src := d.pickReplica(t.Block, locs, node)
		if !d.sourceReadable(src) {
			d.failConnect(at, src)
			return
		}
		tier := netsim.TierDisk
		if d.cacheTouch(src, t.Block, t.InputBytes) {
			// Warm at the source: its disk stays idle; the network path is
			// charged as usual.
			tier = netsim.TierMemory
		}
		at.flows = append(at.flows, d.fabric.RemoteReadCapTier(src, node, bytes, d.cfg.RemoteReadCapBps, tier, done))
		return
	}
	d.startShuffleFetch(at)
}

// startShuffleFetch launches the fetch flows of a non-input task: it pulls
// its share of every parent stage's output from the nodes the parent tasks
// ran on, bundling sources beyond MaxFanIn.
func (d *Driver) startShuffleFetch(at *attempt) {
	t := at.task
	dst := at.exec.Node.ID

	// Volume produced per source node across all parent stages. Output on
	// nodes that have since failed is gone (no external shuffle service
	// survives a machine loss); it is regenerated locally instead — the
	// stand-in for recomputing the parent partitions from lineage.
	perNode := map[int]float64{}
	regen := 0.0
	for _, p := range t.Stage.Parents {
		for _, pt := range p.Tasks {
			if pt.OutputBytes > 0 && pt.RanOnNode >= 0 {
				if d.failedNodes[pt.RanOnNode] {
					regen += float64(pt.OutputBytes)
					continue
				}
				perNode[pt.RanOnNode] += float64(pt.OutputBytes)
			}
		}
	}
	width := len(t.Stage.Tasks)
	if width == 0 {
		width = 1
	}
	nodes := make([]int, 0, len(perNode))
	total := 0.0
	for n, b := range perNode {
		nodes = append(nodes, n)
		total += b
	}
	sort.Ints(nodes)
	if total == 0 && regen == 0 {
		// Nothing to fetch: fall through to compute directly.
		at.remaining = 1
		d.readFinished(at)
		return
	}

	// Bundle sources into at most MaxFanIn groups to bound flow count; each
	// group's flow originates at its largest contributor.
	fan := d.cfg.MaxFanIn
	if fan <= 0 {
		fan = 8
	}
	groups := fan
	if len(nodes) < groups {
		groups = len(nodes)
	}
	groupBytes := make([]float64, groups)
	groupSrc := make([]int, groups)
	for i := range groupSrc {
		groupSrc[i] = -1
	}
	for i, n := range nodes {
		g := i % groups
		if groupSrc[g] == -1 || perNode[n] > perNode[groupSrc[g]] {
			groupSrc[g] = n
		}
		groupBytes[g] += perNode[n]
	}

	at.remaining = groups
	if regen > 0 {
		at.remaining++
		at.flows = append(at.flows, d.fabric.LocalRead(dst, regen/float64(width), func() {
			d.readFinished(at)
		}))
	}
	for g := 0; g < groups; g++ {
		share := groupBytes[g] / float64(width)
		at.flows = append(at.flows, d.fabric.Transfer(groupSrc[g], dst, share, func() {
			d.readFinished(at)
		}))
	}
}

// readFinished fires once per completed fetch flow; when all input is in,
// the compute phase begins.
func (d *Driver) readFinished(at *attempt) {
	if at.dead {
		return
	}
	at.remaining--
	if at.remaining > 0 {
		return
	}
	at.readDone = d.eng.Now()
	compute := at.task.ComputeSec
	if sp := at.exec.Node.Speed; sp > 0 && sp != 1 {
		compute /= sp // slow nodes compute slower
	}
	if n := d.cfg.ComputeNoise; n > 0 {
		compute *= d.rng.Range(1-n, 1+n)
	}
	if d.cfg.StragglerProb > 0 && d.rng.Bool(d.cfg.StragglerProb) {
		f := d.cfg.StragglerFactor
		if f <= 1 {
			f = 4
		}
		compute *= f
	}
	at.timer = d.eng.Schedule(compute, func() { d.attemptFinished(at) })
}

// attemptFinished completes one attempt; the first attempt to finish wins.
func (d *Driver) attemptFinished(at *attempt) {
	if at.dead {
		return
	}
	at.dead = true
	t := at.task
	e := at.exec
	now := d.eng.Now()
	if err := d.cl.FinishTask(e); err != nil {
		panic(err)
	}

	if t.State == app.TaskDone {
		// A sibling attempt already completed the task.
		d.afterSlotFreed(e)
		return
	}

	// Cancel sibling attempts (speculation: first finisher wins).
	for _, other := range d.running[t] {
		if other == at || other.dead {
			continue
		}
		d.killAttempt(other)
	}
	delete(d.running, t)
	delete(d.taskFails, t)
	delete(d.badSrc, t)

	t.RanOnNode = e.Node.ID
	if !t.IsInput() {
		t.RanLocal = false
	} else if at.spec {
		// Re-derive locality for the winning (speculative) attempt.
		t.RanLocal = false
		for _, n := range d.nn.Locations(t.Block) {
			if n == e.Node.ID {
				t.RanLocal = true
				break
			}
		}
	}

	d.col.AddTask(metrics.TaskRecord{
		App:            int(t.Job.App.ID),
		Job:            t.Job.ID,
		Stage:          t.Stage.ID,
		Index:          t.Index,
		Workload:       t.Job.Workload,
		Input:          t.IsInput(),
		Local:          t.RanLocal,
		SchedulerDelay: t.LaunchedAt - t.ReadyAt,
		ReadSec:        at.readDone - at.launched,
		Duration:       now - at.launched,
		Speculative:    at.spec,
	})

	d.tr.Emit(trace.Event{Time: now, Kind: trace.TaskFinish, App: int(t.Job.App.ID),
		Job: t.Job.ID, Stage: t.Stage.ID, Task: t.Index, Exec: e.ID, Node: e.Node.ID, Local: t.RanLocal})
	stageDone, jobDone := t.Job.MarkTaskDone(t, now)
	if stageDone {
		d.onStageComplete(t.Job)
	}
	if jobDone {
		d.onJobComplete(t.Job)
	}
	if d.cfg.Speculation {
		d.maybeSpeculate(t.Stage)
	}
	d.afterSlotFreed(e)
}

// killAttempt cancels an attempt's flows and timer and frees its executor.
func (d *Driver) killAttempt(at *attempt) {
	at.dead = true
	for _, f := range at.flows {
		d.fabric.Cancel(f)
	}
	if at.timer != nil {
		d.eng.Cancel(at.timer)
	}
	if err := d.cl.FinishTask(at.exec); err != nil {
		panic(err)
	}
	d.afterSlotFreed(at.exec)
}

// afterSlotFreed re-dispatches and, if the executor stays idle, informs the
// manager so it can reclaim or re-offer it.
func (d *Driver) afterSlotFreed(e *cluster.Executor) {
	d.dispatch()
	if e.Running() == 0 && !d.inManager {
		d.managerCall(func() { d.cfg.Manager.OnExecutorIdle(d, e) })
		d.dispatch()
	}
}

// onStageComplete readies child stages and queues their tasks.
func (d *Driver) onStageComplete(j *app.Job) {
	now := d.eng.Now()
	var ready []*app.Task
	for _, s := range j.ReadyStages() {
		for _, t := range s.Tasks {
			if t.State == app.TaskWaiting {
				t.State = app.TaskReady
				t.ReadyAt = now
				ready = append(ready, t)
			}
		}
	}
	if len(ready) > 0 {
		d.scheds[j.App.ID].Submit(ready, now)
	}
}

// onJobComplete records job metrics and lets the manager reallocate.
func (d *Driver) onJobComplete(j *app.Job) {
	local, total := 0, 0
	for _, t := range j.InputTasks() {
		total++
		if t.RanLocal {
			local++
		}
	}
	inputSec := 0.0
	if in := j.InputStage(); in != nil {
		inputSec = in.FinishedAt() - j.SubmitAt
	}
	d.col.AddJob(metrics.JobRecord{
		App:           int(j.App.ID),
		Job:           j.ID,
		Workload:      j.Workload,
		Submit:        j.SubmitAt,
		Finish:        j.FinishedAt,
		InputStageSec: inputSec,
		LocalInput:    local,
		TotalInput:    total,
	})
	j.App.RecordJobLocality(local, total)
	d.tr.Emit(trace.Event{Time: d.eng.Now(), Kind: trace.JobFinish, App: int(j.App.ID),
		Job: j.ID, Stage: -1, Task: -1, Exec: -1, Node: -1, Local: local == total})
	d.managerCall(func() { d.cfg.Manager.OnJobFinish(d, j.App, j) })
}

// maybeSpeculate launches duplicate attempts for stragglers: running tasks
// whose age exceeds SpeculationMultiplier × the stage's median completed
// duration, once SpeculationQuantile of the stage has finished.
func (d *Driver) maybeSpeculate(s *app.Stage) {
	now := d.eng.Now()
	doneFrac := float64(s.Done()) / float64(len(s.Tasks))
	if doneFrac < d.cfg.SpeculationQuantile || s.Complete() {
		return
	}
	var durations []float64
	for _, t := range s.Tasks {
		if t.State == app.TaskDone {
			durations = append(durations, t.FinishedAt-t.LaunchedAt)
		}
	}
	sort.Float64s(durations)
	median := metrics.Percentile(durations, 0.5)
	threshold := median * d.cfg.SpeculationMultiplier
	for _, t := range s.Tasks {
		if t.State != app.TaskRunning || len(d.running[t]) != 1 {
			continue
		}
		if now-t.LaunchedAt <= threshold {
			continue
		}
		// Find an idle executor owned by the app (prefer one local to the
		// task's block).
		var pick *cluster.Executor
		for _, e := range d.cl.Owned(t.Job.App.ID) {
			if e.FreeSlots() <= 0 || d.execReady[e.ID] > now || d.nodeExcluded(e.Node.ID, now) {
				continue
			}
			if t.IsInput() && d.localTo(t, e.Node.ID) {
				pick = e
				break
			}
			if pick == nil {
				pick = e
			}
		}
		if pick != nil {
			d.launch(t, pick, true)
		}
	}
}

// pickReplica selects the source of a non-local read via the configured
// replica selector (random by default). Block-aware selectors (cache
// warmth) get the block ID; plain selectors keep the narrow signature.
func (d *Driver) pickReplica(id hdfs.BlockID, locs []int, dst int) int {
	sel := d.cfg.ReplicaSelection
	if sel == nil {
		return locs[d.rng.Intn(len(locs))]
	}
	if bs, ok := sel.(hdfs.BlockAwareSelector); ok {
		return bs.PickBlock(d.nn, id, locs, dst, d.rng)
	}
	return sel.Pick(d.nn, locs, dst, d.rng)
}

// cacheTouch consults the serving node's block cache before a read: a hit
// renews recency and streams from the memory tier; a miss admits the block,
// since this node is about to serve its bytes (keeping "cached implies
// held" an auditable invariant). Hit/miss/eviction counts land in the
// collector, totals and per node. Always false when the tier is disabled.
func (d *Driver) cacheTouch(node int, id hdfs.BlockID, size int64) bool {
	c := d.nn.Cache(node)
	if c == nil {
		return false
	}
	nc := d.col.NodeCache(node)
	if c.Touch(id) {
		d.col.CacheHits++
		nc.Hits++
		return true
	}
	d.col.CacheMisses++
	nc.Misses++
	ev := c.Admit(id, size)
	d.col.CacheEvictions += ev
	nc.Evictions += ev
	return false
}

// localTo reports whether the task's block has a replica on the node.
func (d *Driver) localTo(t *app.Task, node int) bool {
	for _, n := range d.nn.Locations(t.Block) {
		if n == node {
			return true
		}
	}
	return false
}
