// Package trace records simulation timelines: executor allocations, task
// launches and completions, job lifecycle, and node failures. Traces are the
// raw material for debugging scheduling decisions and for the utilization
// analyses in the ablations; they export to CSV or JSON Lines.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Kind classifies a trace event.
type Kind string

// Event kinds emitted by the driver.
const (
	AppRegister Kind = "app-register"
	JobSubmit   Kind = "job-submit"
	JobFinish   Kind = "job-finish"
	ExecAlloc   Kind = "exec-alloc"
	ExecRelease Kind = "exec-release"
	TaskLaunch  Kind = "task-launch"
	TaskFinish  Kind = "task-finish"
	NodeFail    Kind = "node-fail"
	NodeRecover Kind = "node-recover"
)

// Event kinds emitted by the chaos/resilience layer.
const (
	ExecFail         Kind = "exec-fail"
	ExecRecover      Kind = "exec-recover"
	NetPartition     Kind = "net-partition"
	NetHeal          Kind = "net-heal"
	LinkDegrade      Kind = "link-degrade"
	LinkRestore      Kind = "link-restore"
	DiskSlow         Kind = "disk-slow"
	DiskRestore      Kind = "disk-restore"
	DataNodeFlake    Kind = "datanode-flake"
	DataNodeResume   Kind = "datanode-resume"
	MetaStale        Kind = "meta-stale"
	MetaFresh        Kind = "meta-fresh"
	TaskRetry        Kind = "task-retry"
	NodeBlacklist    Kind = "node-blacklist"
	ReplicationStall Kind = "replication-stall"
	ReplicaRestored  Kind = "replica-restored"
	FaultNoop        Kind = "fault-noop"
)

// Event is one timeline entry. Unused integer fields are -1.
type Event struct {
	Time  float64 `json:"t"`
	Kind  Kind    `json:"kind"`
	App   int     `json:"app"`
	Job   int     `json:"job"`
	Stage int     `json:"stage"`
	Task  int     `json:"task"`
	Exec  int     `json:"exec"`
	Node  int     `json:"node"`
	Local bool    `json:"local,omitempty"`
}

// Tracer consumes events.
type Tracer interface {
	Emit(Event)
}

// Nop discards all events.
type Nop struct{}

// Emit implements Tracer.
func (Nop) Emit(Event) {}

// Recorder stores events in order.
type Recorder struct {
	Events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit implements Tracer.
func (r *Recorder) Emit(e Event) { r.Events = append(r.Events, e) }

// Filter returns the events of one kind.
func (r *Recorder) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range r.Events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Count returns the number of events of one kind.
func (r *Recorder) Count(kind Kind) int { return len(r.Filter(kind)) }

// Span returns the first and last event times (0,0 when empty).
func (r *Recorder) Span() (first, last float64) {
	if len(r.Events) == 0 {
		return 0, 0
	}
	return r.Events[0].Time, r.Events[len(r.Events)-1].Time
}

// csvHeader is the column layout of WriteCSV.
const csvHeader = "time,kind,app,job,stage,task,exec,node,local"

// WriteCSV writes the trace as CSV.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, csvHeader); err != nil {
		return err
	}
	for _, e := range r.Events {
		row := strings.Join([]string{
			strconv.FormatFloat(e.Time, 'f', 6, 64),
			string(e.Kind),
			strconv.Itoa(e.App), strconv.Itoa(e.Job), strconv.Itoa(e.Stage),
			strconv.Itoa(e.Task), strconv.Itoa(e.Exec), strconv.Itoa(e.Node),
			strconv.FormatBool(e.Local),
		}, ",")
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL writes the trace as JSON Lines.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// MigrationCount counts executor ownership changes (alloc events whose
// executor was previously allocated to a different app).
func (r *Recorder) MigrationCount() int {
	last := map[int]int{}
	n := 0
	for _, e := range r.Events {
		if e.Kind != ExecAlloc {
			continue
		}
		if prev, ok := last[e.Exec]; ok && prev != e.App {
			n++
		}
		last[e.Exec] = e.App
	}
	return n
}

// BusySlotSeconds integrates task occupancy: Σ (finish − launch) over all
// task attempts, pairing attempts explicitly. A task identified by
// (app, job, stage, task) can occupy a slot more than once — the driver
// re-emits TaskLaunch for every retried or speculative attempt — so a new
// launch while an interval is open banks the elapsed occupancy before
// reopening, and a TaskRetry (emitted at fault time, when the attempt's
// slot is reclaimed) closes the open interval. Without attempt pairing a
// re-launch would silently overwrite the first attempt's start time and
// drop its occupancy, undercounting utilization under any chaos schedule.
func (r *Recorder) BusySlotSeconds() float64 {
	type key struct{ app, job, stage, task int }
	launched := map[key]float64{}
	total := 0.0
	for _, e := range r.Events {
		k := key{e.App, e.Job, e.Stage, e.Task}
		switch e.Kind {
		case TaskLaunch:
			if t0, ok := launched[k]; ok {
				// A prior attempt is still open (retry or speculative
				// re-launch): its slot was busy from t0 until now.
				total += e.Time - t0
			}
			launched[k] = e.Time
		case TaskRetry:
			// The failed attempt's slot is reclaimed at fault time.
			if t0, ok := launched[k]; ok {
				total += e.Time - t0
				delete(launched, k)
			}
		case TaskFinish:
			if t0, ok := launched[k]; ok {
				total += e.Time - t0
				delete(launched, k)
			}
		}
	}
	return total
}

// Utilization returns BusySlotSeconds divided by (slots × span).
func (r *Recorder) Utilization(totalSlots int) float64 {
	first, last := r.Span()
	if totalSlots <= 0 || last <= first {
		return 0
	}
	return r.BusySlotSeconds() / (float64(totalSlots) * (last - first))
}
