package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Time: 0, Kind: AppRegister, App: 0, Job: -1, Stage: -1, Task: -1, Exec: -1, Node: -1},
		{Time: 1, Kind: JobSubmit, App: 0, Job: 1, Stage: -1, Task: -1, Exec: -1, Node: -1},
		{Time: 1, Kind: ExecAlloc, App: 0, Job: -1, Stage: -1, Task: -1, Exec: 3, Node: 1},
		{Time: 1.5, Kind: TaskLaunch, App: 0, Job: 1, Stage: 0, Task: 0, Exec: 3, Node: 1},
		{Time: 4.5, Kind: TaskFinish, App: 0, Job: 1, Stage: 0, Task: 0, Exec: 3, Node: 1, Local: true},
		{Time: 4.5, Kind: JobFinish, App: 0, Job: 1, Stage: -1, Task: -1, Exec: -1, Node: -1, Local: true},
		{Time: 5, Kind: ExecAlloc, App: 1, Job: -1, Stage: -1, Task: -1, Exec: 3, Node: 1},
	}
}

func load(r *Recorder) {
	for _, e := range sampleEvents() {
		r.Emit(e)
	}
}

func TestRecorderFilterCount(t *testing.T) {
	r := NewRecorder()
	load(r)
	if r.Count(ExecAlloc) != 2 {
		t.Fatalf("ExecAlloc count = %d", r.Count(ExecAlloc))
	}
	if got := r.Filter(TaskFinish); len(got) != 1 || !got[0].Local {
		t.Fatalf("TaskFinish filter = %+v", got)
	}
	if r.Count(NodeFail) != 0 {
		t.Fatal("phantom NodeFail events")
	}
}

func TestSpan(t *testing.T) {
	r := NewRecorder()
	if a, b := r.Span(); a != 0 || b != 0 {
		t.Fatal("empty span not zero")
	}
	load(r)
	first, last := r.Span()
	if first != 0 || last != 5 {
		t.Fatalf("span = %v..%v", first, last)
	}
}

func TestMigrationCount(t *testing.T) {
	r := NewRecorder()
	load(r)
	// Executor 3: app 0 → app 1 is one migration.
	if got := r.MigrationCount(); got != 1 {
		t.Fatalf("migrations = %d", got)
	}
}

func TestBusySlotSecondsAndUtilization(t *testing.T) {
	r := NewRecorder()
	load(r)
	if got := r.BusySlotSeconds(); got != 3.0 {
		t.Fatalf("busy slot seconds = %v, want 3 (4.5-1.5)", got)
	}
	// Span 5 s, 2 slots → utilization 3/(2*5) = 0.3.
	if got := r.Utilization(2); got != 0.3 {
		t.Fatalf("utilization = %v", got)
	}
	if got := r.Utilization(0); got != 0 {
		t.Fatalf("utilization with 0 slots = %v", got)
	}
}

// TestBusySlotSecondsRetryHeavy pins the attempt-pairing fix: a task whose
// first attempt is killed by a fault occupies a slot twice — launch(0) to
// the fault's TaskRetry(5), then the re-launch(7) to finish(10) — for 8
// busy slot-seconds. The retry-blind implementation keyed launches only by
// (app,job,stage,task), so the re-launch overwrote the first attempt and
// its occupancy vanished (it reported 3.0 here: just 10−7).
func TestBusySlotSecondsRetryHeavy(t *testing.T) {
	r := NewRecorder()
	evs := []Event{
		{Time: 0, Kind: TaskLaunch, App: 0, Job: 1, Stage: 0, Task: 0, Exec: 3, Node: 1},
		{Time: 5, Kind: TaskRetry, App: 0, Job: 1, Stage: 0, Task: 0, Exec: 3, Node: 1},
		{Time: 7, Kind: TaskLaunch, App: 0, Job: 1, Stage: 0, Task: 0, Exec: 4, Node: 2},
		{Time: 10, Kind: TaskFinish, App: 0, Job: 1, Stage: 0, Task: 0, Exec: 4, Node: 2},
	}
	for _, e := range evs {
		r.Emit(e)
	}
	if got := r.BusySlotSeconds(); got != 8.0 {
		t.Fatalf("busy slot seconds = %v, want 8 ([0,5] + [7,10]); retried attempt dropped", got)
	}

	// A re-launch with no intervening TaskRetry (the fault was observed
	// only at re-queue time, or the attempt was speculatively replaced)
	// must still bank the first attempt's elapsed occupancy.
	r2 := NewRecorder()
	for _, e := range []Event{
		{Time: 1, Kind: TaskLaunch, App: 0, Job: 1, Stage: 0, Task: 0, Exec: 3, Node: 1},
		{Time: 4, Kind: TaskLaunch, App: 0, Job: 1, Stage: 0, Task: 0, Exec: 4, Node: 2},
		{Time: 6, Kind: TaskFinish, App: 0, Job: 1, Stage: 0, Task: 0, Exec: 4, Node: 2},
	} {
		r2.Emit(e)
	}
	if got := r2.BusySlotSeconds(); got != 5.0 {
		t.Fatalf("busy slot seconds = %v, want 5 ([1,4] banked + [4,6])", got)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	load(r)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(sampleEvents())+1 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != csvHeader {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[4], "task-launch") {
		t.Fatalf("row 4 = %q", lines[4])
	}
}

func TestWriteJSONL(t *testing.T) {
	r := NewRecorder()
	load(r)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(sampleEvents()) {
		t.Fatalf("jsonl lines = %d", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[3]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != TaskLaunch || e.Exec != 3 {
		t.Fatalf("decoded = %+v", e)
	}
}

func TestNopTracer(t *testing.T) {
	var n Nop
	n.Emit(Event{}) // must not panic
}
