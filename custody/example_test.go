package custody_test

import (
	"fmt"

	"repro/custody"
)

// ExampleAllocate reproduces the paper's Fig. 1 motivating example: with
// data-aware allocation both applications achieve perfect locality.
func ExampleAllocate() {
	apps := []custody.AppDemand{
		{App: 1, Budget: 2, Jobs: []custody.JobDemand{{
			Job: 1, Tasks: []custody.TaskDemand{
				{Task: 1, Block: 0, Nodes: []int{0}},
				{Task: 2, Block: 1, Nodes: []int{1}},
			}}}},
		{App: 2, Budget: 2, Jobs: []custody.JobDemand{{
			Job: 1, Tasks: []custody.TaskDemand{
				{Task: 1, Block: 2, Nodes: []int{2}},
				{Task: 2, Block: 3, Nodes: []int{3}},
			}}}},
	}
	idle := []custody.ExecInfo{
		{ID: 0, Node: 0}, {ID: 1, Node: 1}, {ID: 2, Node: 2}, {ID: 3, Node: 3},
	}
	plan := custody.Allocate(apps, idle, custody.DefaultAllocateOptions())
	fmt.Printf("local assignments: %d/4\n", plan.LocalCount())
	// Output: local assignments: 4/4
}

// ExampleFractionalMaxMin shows the §III-B upper bound on a contended
// instance: two applications, one task each, a single shared executor.
func ExampleFractionalMaxMin() {
	apps := []custody.AppDemand{
		{App: 0, Budget: 1, Jobs: []custody.JobDemand{{Job: 1, Tasks: []custody.TaskDemand{{Task: 1, Block: 0, Nodes: []int{0}}}}}},
		{App: 1, Budget: 1, Jobs: []custody.JobDemand{{Job: 1, Tasks: []custody.TaskDemand{{Task: 1, Block: 0, Nodes: []int{0}}}}}},
	}
	idle := []custody.ExecInfo{{ID: 0, Node: 0}}
	bound := custody.FractionalMaxMin(apps, idle, 1e-4)
	fmt.Printf("max-min fraction <= %.1f\n", bound)
	// Output: max-min fraction <= 0.5
}

// ExampleRun executes a small WordCount workload under Custody and prints
// whether every job completed.
func ExampleRun() {
	res, err := custody.Run(
		custody.Config{Nodes: 10, Seed: 7, Manager: custody.ManagerCustody},
		custody.Workload{Kind: "WordCount", Apps: 2, JobsPerApp: 2, Seed: 7},
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("jobs completed: %d\n", res.Jobs())
	// Output: jobs completed: 4
}
