package custody

import (
	"testing"

	"repro/internal/experiments"
)

func TestAllocateFacade(t *testing.T) {
	apps := []AppDemand{
		{App: 1, Budget: 2, Jobs: []JobDemand{
			{Job: 1, Tasks: []TaskDemand{{Task: 1, Block: 0, Nodes: []int{0}}, {Task: 2, Block: 1, Nodes: []int{1}}}},
		}},
	}
	idle := []ExecInfo{{ID: 0, Node: 0}, {ID: 1, Node: 1}}
	plan := Allocate(apps, idle, DefaultAllocateOptions())
	if len(plan.Assignments) != 2 || plan.LocalCount() != 2 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestComparatorsFacade(t *testing.T) {
	jobs := []JobDemand{{Job: 1, Tasks: []TaskDemand{{Task: 1, Block: 0, Nodes: []int{0}}}}}
	idle := []ExecInfo{{ID: 0, Node: 0}}
	if got := OptimalIntraObjective(jobs, idle, 1); got != 1 {
		t.Fatalf("optimal objective = %v", got)
	}
	apps := []AppDemand{{App: 0, Budget: 1, Jobs: jobs}}
	if got := FractionalMaxMin(apps, idle, 1e-3); got != 1 {
		t.Fatalf("fractional bound = %v", got)
	}
}

func quickCfg(m ManagerName) Config {
	return Config{Nodes: 10, Manager: m, Seed: 3}
}

func quickWl() Workload {
	return Workload{Kind: "Sort", Apps: 2, JobsPerApp: 2, MeanInterarrival: 2, Seed: 5}
}

func TestRunFacade(t *testing.T) {
	res, err := Run(quickCfg(ManagerCustody), quickWl())
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs() != 4 {
		t.Fatalf("jobs = %d", res.Jobs())
	}
	if l := res.MeanLocality(); l < 0 || l > 1 {
		t.Fatalf("locality = %v", l)
	}
	if res.MeanJCT() <= 0 || res.MeanInputStageSec() <= 0 {
		t.Fatalf("JCT=%v input=%v", res.MeanJCT(), res.MeanInputStageSec())
	}
	if res.MeanSchedulerDelay() < 0 {
		t.Fatalf("delay = %v", res.MeanSchedulerDelay())
	}
	if p := res.PctLocalJobs(); p < 0 || p > 1 {
		t.Fatalf("pct local jobs = %v", p)
	}
}

func TestRunAllManagers(t *testing.T) {
	for _, m := range []ManagerName{ManagerCustody, ManagerStandalone, ManagerOffer} {
		res, err := Run(quickCfg(m), quickWl())
		if err != nil {
			t.Fatalf("[%s] %v", m, err)
		}
		if res.Jobs() != 4 {
			t.Fatalf("[%s] jobs = %d", m, res.Jobs())
		}
	}
}

func TestCompareFacade(t *testing.T) {
	spark, cust, err := Compare(quickCfg(""), quickWl(), ManagerStandalone, ManagerCustody)
	if err != nil {
		t.Fatal(err)
	}
	if spark.Jobs() != cust.Jobs() {
		t.Fatalf("job counts differ: %d vs %d", spark.Jobs(), cust.Jobs())
	}
}

func TestNewSimulationCustomDAG(t *testing.T) {
	sim := NewSimulation(quickCfg(ManagerCustody))
	f, err := sim.CreateInput("data", 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	a := sim.RegisterApp("custom")
	sim.Start()
	j := BuildJob("WordCount", 1, f)
	sim.SubmitJobAt(0.5, a, j)
	col := sim.Run()
	if len(col.Jobs) != 1 {
		t.Fatalf("jobs = %d", len(col.Jobs))
	}
}

func TestFiguresQuick(t *testing.T) {
	opts := experiments.DefaultOptions()
	opts.Quick = true
	sw, err := Figures(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Fig7().Rows) == 0 {
		t.Fatal("empty Fig7")
	}
}

func TestYARNManagerFacade(t *testing.T) {
	res, err := Run(quickCfg(ManagerYARN), quickWl())
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs() != 4 {
		t.Fatalf("jobs = %d", res.Jobs())
	}
}

func TestSchedulerSelectionFacade(t *testing.T) {
	for _, s := range []string{"delay", "delay-taskset", "fifo", "quincy"} {
		cfg := quickCfg(ManagerCustody)
		cfg.Scheduler = s
		res, err := Run(cfg, quickWl())
		if err != nil {
			t.Fatalf("[%s] %v", s, err)
		}
		if res.Jobs() != 4 {
			t.Fatalf("[%s] jobs = %d", s, res.Jobs())
		}
	}
	// locality-hard can starve under multi-application contention (the
	// §VII critique of hard constraints: nothing guarantees access to the
	// executors storing the data), so it is exercised with a single app.
	cfg := quickCfg(ManagerCustody)
	cfg.Scheduler = "locality-hard"
	wl := quickWl()
	wl.Apps = 1
	res, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs() != 2 {
		t.Fatalf("[locality-hard] jobs = %d", res.Jobs())
	}
}

func TestTraceFacade(t *testing.T) {
	cfg := quickCfg(ManagerCustody)
	cfg.Trace = true
	res, err := Run(cfg, quickWl())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(res.Trace.Events) == 0 {
		t.Fatal("trace missing")
	}
	// Without Trace, no recorder is attached.
	cfg.Trace = false
	res2, err := Run(cfg, quickWl())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace != nil {
		t.Fatal("unexpected trace recorder")
	}
}

func TestBuildLocalityNetworkFacade(t *testing.T) {
	apps := []AppDemand{{App: 0, Budget: 1, Jobs: []JobDemand{
		{Job: 1, Tasks: []TaskDemand{{Task: 1, Block: 0, Nodes: []int{0}}}},
	}}}
	idle := []ExecInfo{{ID: 0, Node: 0}}
	net := BuildLocalityNetwork(apps, idle)
	if net.Tasks() != 1 || len(net.UnservableTasks()) != 0 {
		t.Fatalf("network: tasks=%d unservable=%v", net.Tasks(), net.UnservableTasks())
	}
	if net.DOT() == "" {
		t.Fatal("empty DOT")
	}
}

func TestFailureInjectionFacade(t *testing.T) {
	sim := NewSimulation(quickCfg(ManagerCustody))
	f, err := sim.CreateInput("data", 512<<20)
	if err != nil {
		t.Fatal(err)
	}
	a := sim.RegisterApp("x")
	sim.Start()
	sim.SubmitJobAt(1, a, BuildJob("Sort", 1, f))
	sim.FailNodeAt(2, 0)
	sim.RecoverNodeAt(10, 0)
	col := sim.Run()
	if len(col.Jobs) != 1 {
		t.Fatalf("jobs = %d", len(col.Jobs))
	}
}
