// Package custody is the public API of the Custody reproduction: data-aware
// executor allocation for cluster-based data-parallel frameworks (Ma, Jiang,
// Li & Li, IEEE CLUSTER 2016), together with the discrete-event cluster
// simulator used to evaluate it.
//
// Three levels of use:
//
//  1. The allocation algorithms alone — Allocate runs Custody's two-level
//     data-aware allocation (Algorithms 1 and 2 of the paper) over a
//     snapshot of application demands and idle executors. This is the piece
//     a real cluster manager would embed.
//
//  2. Whole-cluster simulations — NewSimulation / Run execute workloads on
//     a simulated cluster (HDFS-like storage, max-min-fair network fabric,
//     delay scheduling) under a choice of cluster managers: Custody, a
//     Spark-standalone-like static manager, or a Mesos-like offer manager.
//
//  3. Paper reproduction — Figures and the ablation runners regenerate the
//     evaluation section's tables and figures.
package custody

import (
	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/experiments"
	"repro/internal/hdfs"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/obsv"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// ---- Level 1: the allocation algorithms (internal/core) ----

// BlockID identifies an HDFS block cluster-wide.
type BlockID = hdfs.BlockID

// TaskDemand is one input task's data requirement: the block it reads and
// the nodes storing replicas of that block.
type TaskDemand = core.TaskDemand

// JobDemand is one job's set of input-task demands.
type JobDemand = core.JobDemand

// AppDemand describes one application's pending demand, executor budget
// σ, held executors ζ, and locality history.
type AppDemand = core.AppDemand

// ExecInfo describes an idle executor available for allocation.
type ExecInfo = core.ExecInfo

// Assignment allocates one executor slot to an application.
type Assignment = core.Assignment

// Plan is the output of an allocation round.
type Plan = core.Plan

// AllocateOptions tunes the allocator.
type AllocateOptions = core.Options

// Allocate runs Custody's two-level data-aware allocation (Algorithm 1:
// inter-application min-locality fairness; Algorithm 2: intra-application
// priority by fewest remaining input tasks) and returns the executor
// assignments.
func Allocate(apps []AppDemand, idle []ExecInfo, opts AllocateOptions) Plan {
	return core.Allocate(apps, idle, opts)
}

// DefaultAllocateOptions mirrors the paper's configuration.
func DefaultAllocateOptions() AllocateOptions { return core.DefaultOptions() }

// OptimalIntraObjective solves the intra-application constrained matching
// exactly (min-cost flow) — the comparator for Algorithm 2's greedy.
func OptimalIntraObjective(jobs []JobDemand, idle []ExecInfo, budget int) float64 {
	return core.OptimalIntraObjective(jobs, idle, budget)
}

// FractionalMaxMin computes the LP-relaxed maximum-concurrent-flow upper
// bound on the max-min fraction of local tasks (§III-B).
func FractionalMaxMin(apps []AppDemand, idle []ExecInfo, tol float64) float64 {
	return core.FractionalMaxMin(apps, idle, tol)
}

// LocalityNetwork is the paper's Fig. 2 flow network; render it with DOT or
// inspect unservable tasks.
type LocalityNetwork = core.LocalityNetwork

// BuildLocalityNetwork constructs the §III-B maximum-concurrent-flow
// instance from demands and idle executors.
func BuildLocalityNetwork(apps []AppDemand, idle []ExecInfo) *LocalityNetwork {
	return core.BuildLocalityNetwork(apps, idle)
}

// ---- Level 2: whole-cluster simulation ----

// ManagerName selects the cluster manager for a simulation.
type ManagerName string

// Available cluster managers.
const (
	ManagerCustody    ManagerName = "custody"
	ManagerStandalone ManagerName = "spark"
	ManagerOffer      ManagerName = "offer"
	ManagerYARN       ManagerName = "yarn"
)

// Config is a simulation configuration. Zero fields default to the paper's
// testbed (100 nodes, 2 executors × 4 slots per node, 128 MB blocks ×3
// replicas, delay scheduling with 3 s wait).
type Config struct {
	Nodes            int
	ExecutorsPerNode int
	SlotsPerExecutor int
	Seed             uint64
	Manager          ManagerName
	// Scheduler selects the per-application task scheduler: "delay"
	// (default), "delay-taskset", "fifo", "locality-hard", or "quincy".
	Scheduler       string
	LocalityWaitSec float64
	Speculation     bool
	// Trace records the execution timeline; retrieve it from Result.Trace.
	Trace bool
	// Shards partitions the allocator's per-round session build into this
	// many rack-affine shards built on parallel goroutines (DESIGN.md §14).
	// 0 or 1 keeps the build sequential. The allocation plan is byte-
	// identical for every value; only round latency changes. Custody
	// manager only — the other managers don't run the core allocator.
	Shards int
	// Obsv attaches a decision-provenance hub (see NewObservability): the
	// Custody manager's allocator reports every Algorithm 1 pick and grant
	// into it, and the driver feeds it audit results and fault no-ops.
	Obsv *Observability
	// CacheMB attaches a per-node in-memory block cache of this many
	// megabytes: warm reads stream at memory bandwidth, hits/misses/
	// evictions are collected, and grants on warm nodes are tagged
	// cache-hit. 0 (default) disables the tier — the read path is then
	// byte-identical to the cacheless simulation.
	CacheMB int64
	// CachePolicy selects the cache's eviction policy: "lru" (default) or
	// "2q".
	CachePolicy string
	// Policy selects the Custody manager's allocation policy (DESIGN.md
	// §16): "custody" (default, Algorithms 1+2), "quincy" (global min-cost
	// flow), "wfair" (per-server weighted fair), or "locmatch"
	// (Hopcroft-Karp + Hungarian locality matching). "" or "custody" keeps
	// the built-in path byte-identical to previous releases. Custody
	// manager only.
	Policy string
}

// TotalSlots returns the run's total task-slot capacity — nodes ×
// executors per node × slots per executor after defaults are applied — the
// denominator of TraceRecorder.Utilization.
func (c Config) TotalSlots() int {
	dcfg := c.driverConfig()
	return dcfg.Nodes * dcfg.ExecutorsPerNode * dcfg.SlotsPerExecutor
}

// Workload describes a generated workload, mirroring §VI-A2.
type Workload struct {
	Kind             string // "WordCount", "Sort", or "PageRank"
	Apps             int    // default 4
	JobsPerApp       int    // default 30
	MeanInterarrival float64
	Seed             uint64
}

// TraceRecorder is an execution-timeline recorder (see Config.Trace); it
// exports to CSV or JSON Lines.
type TraceRecorder = trace.Recorder

// Result carries a finished run's metrics.
type Result struct {
	// Collector holds the raw per-task and per-job records.
	Collector *metrics.Collector
	// Trace is the execution timeline when Config.Trace was set.
	Trace *TraceRecorder
}

// MeanLocality is the average fraction of local input tasks per job.
func (r *Result) MeanLocality() float64 {
	return metrics.Summarize(r.Collector.LocalityPerJob()).Mean
}

// MeanJCT is the average job completion time in seconds.
func (r *Result) MeanJCT() float64 {
	return metrics.Summarize(r.Collector.JobCompletionTimes()).Mean
}

// MeanInputStageSec is the average input (map) stage completion time.
func (r *Result) MeanInputStageSec() float64 {
	return metrics.Summarize(r.Collector.InputStageTimes()).Mean
}

// MeanSchedulerDelay is the average task scheduler delay in seconds.
func (r *Result) MeanSchedulerDelay() float64 {
	return metrics.Summarize(r.Collector.SchedulerDelays()).Mean
}

// PctLocalJobs is the fraction of jobs with perfect locality.
func (r *Result) PctLocalJobs() float64 { return r.Collector.PctLocalJobs() }

// Jobs returns the number of completed jobs.
func (r *Result) Jobs() int { return len(r.Collector.Jobs) }

func (c Config) driverConfig() driver.Config {
	cfg := driver.DefaultConfig()
	if c.Nodes > 0 {
		cfg.Nodes = c.Nodes
		cfg.RackSize = c.Nodes / 5
		if cfg.RackSize < 1 {
			cfg.RackSize = 1
		}
	}
	if c.ExecutorsPerNode > 0 {
		cfg.ExecutorsPerNode = c.ExecutorsPerNode
	}
	if c.SlotsPerExecutor > 0 {
		cfg.SlotsPerExecutor = c.SlotsPerExecutor
	}
	if c.Seed != 0 {
		cfg.Seed = c.Seed
	}
	if c.LocalityWaitSec > 0 {
		cfg.LocalityWait = c.LocalityWaitSec
	}
	if c.Scheduler != "" {
		cfg.Scheduler = driver.SchedulerKind(c.Scheduler)
	}
	cfg.Speculation = c.Speculation
	seed := cfg.Seed
	switch c.Manager {
	case ManagerStandalone:
		cfg.Manager = manager.NewStandalone(xrand.New(seed), false)
	case ManagerOffer:
		cfg.Manager = manager.NewOffer()
	case ManagerYARN:
		cfg.Manager = manager.NewYARN()
	default:
		cfg.Manager = manager.NewCustody()
	}
	if c.Obsv != nil {
		cfg.Obsv = c.Obsv
		// Allocation decisions exist only under the Custody manager (the
		// others don't run Algorithms 1–2); audits and fault no-ops flow
		// for every manager.
		if m, ok := cfg.Manager.(*manager.Custody); ok {
			m.Opts.Observer = c.Obsv
		}
	}
	if c.Shards > 1 {
		if m, ok := cfg.Manager.(*manager.Custody); ok {
			m.Opts.Shards = c.Shards
		}
	}
	if c.Policy != "" {
		if m, ok := cfg.Manager.(*manager.Custody); ok {
			_ = m.SetPolicy(c.Policy) //custody:ignore errdrop unknown names were rejected by CLI validation; the facade runs the default rather than half-configure, matching its unknown-manager behavior
		}
	}
	if c.CacheMB > 0 {
		cfg.EnableCache(c.CacheMB<<20, hdfs.CachePolicy(c.CachePolicy))
	}
	return cfg
}

func (w Workload) spec() workload.Spec {
	kind := workload.Kind(w.Kind)
	if kind == "" {
		kind = workload.WordCount
	}
	spec := workload.DefaultSpec(kind)
	if w.Apps > 0 {
		spec.Apps = w.Apps
	}
	if w.JobsPerApp > 0 {
		spec.JobsPerApp = w.JobsPerApp
	}
	if w.MeanInterarrival > 0 {
		spec.MeanInterarrival = w.MeanInterarrival
	}
	return spec
}

// Run generates the workload schedule and executes it on a simulated
// cluster under the configured manager.
func Run(cfg Config, w Workload) (*Result, error) {
	seed := w.Seed
	if seed == 0 {
		seed = 1
	}
	sched := workload.Generate(w.spec(), xrand.New(seed))
	dcfg := cfg.driverConfig()
	var rec *trace.Recorder
	if cfg.Trace {
		rec = trace.NewRecorder()
		dcfg.Tracer = rec
	}
	col, err := driver.RunSchedule(dcfg, sched)
	if err != nil {
		return nil, err
	}
	return &Result{Collector: col, Trace: rec}, nil
}

// Compare runs the same workload under two managers and returns both
// results — the paper's methodology (same schedule, different manager).
func Compare(cfg Config, w Workload, a, b ManagerName) (*Result, *Result, error) {
	ca, cb := cfg, cfg
	ca.Manager, cb.Manager = a, b
	ra, err := Run(ca, w)
	if err != nil {
		return nil, nil, err
	}
	rb, err := Run(cb, w)
	if err != nil {
		return nil, nil, err
	}
	return ra, rb, nil
}

// ---- Observability & decision provenance (internal/obsv) ----

// Observability is a decision-provenance hub (DESIGN.md §11): a fixed-size
// flight recorder of every Algorithm 1 pick and executor grant, plus
// streaming sinks (JSONL, CSV, OpenMetrics). Attach one via Config.Obsv;
// after the run, Explain on its Flight recorder reconstructs the exact
// fairness-key comparison behind each grant of a job.
type Observability = obsv.Hub

// ObservedDecision is one recorded Algorithm 1 pick.
type ObservedDecision = obsv.Decision

// ObservedGrant is one recorded executor-slot grant.
type ObservedGrant = obsv.Grant

// NewObservability returns a hub whose flight recorder retains the last
// decisionCap decisions (and 4× as many grants); pass 0 for the defaults.
func NewObservability(decisionCap int) *Observability { return obsv.NewHub(decisionCap) }

// ---- Level 3: paper reproduction ----

// FigureOptions configures the paper sweep.
type FigureOptions = experiments.Options

// Figures runs the full evaluation grid (Figures 7–10). Quick mode shrinks
// the workload for fast exploration.
func Figures(opts FigureOptions) (*experiments.Sweep, error) {
	return experiments.RunSweep(experiments.PaperSizes,
		[]workload.Kind{workload.WordCount, workload.Sort, workload.PageRank},
		[]experiments.ManagerKind{experiments.Standalone, experiments.Custody}, opts)
}

// SimDriver exposes the underlying driver for advanced scenarios (custom
// DAGs, direct HDFS control). See examples/workloads for usage.
type SimDriver = driver.Driver

// NewSimulation builds a bare simulation driver from a Config. The caller
// creates inputs (CreateInput), registers applications (RegisterApp),
// submits jobs (SubmitJobAt) and calls Run. The driver also exposes
// FailNodeAt / RecoverNodeAt for failure injection.
func NewSimulation(cfg Config) *SimDriver {
	return driver.New(cfg.driverConfig())
}

// NewSimulationTraced is NewSimulation with an execution-timeline recorder
// attached.
func NewSimulationTraced(cfg Config, rec *TraceRecorder) *SimDriver {
	dcfg := cfg.driverConfig()
	dcfg.Tracer = rec
	return driver.New(dcfg)
}

// BuildJob constructs one job DAG of the named workload kind over a file
// previously created with SimDriver.CreateInput.
func BuildJob(kind string, id int, f *hdfs.File) *app.Job {
	return workload.BuildJob(workload.Kind(kind), id, f)
}
