// Quickstart: compare Spark's standalone manager with Custody on the same
// WordCount workload — the paper's core experiment in ~20 lines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/custody"
)

func main() {
	cfg := custody.Config{
		Nodes: 50, // 50 worker nodes, 2 executors × 4 slots each
		Seed:  42,
	}
	wl := custody.Workload{
		Kind:       "WordCount",
		Apps:       4,
		JobsPerApp: 10,
		Seed:       42,
	}

	spark, cust, err := custody.Compare(cfg, wl, custody.ManagerStandalone, custody.ManagerCustody)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("WordCount, 4 applications × 10 jobs, 50-node cluster")
	fmt.Printf("%-22s %12s %12s\n", "", "spark", "custody")
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "input-task locality",
		spark.MeanLocality()*100, cust.MeanLocality()*100)
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "perfectly local jobs",
		spark.PctLocalJobs()*100, cust.PctLocalJobs()*100)
	fmt.Printf("%-22s %11.2fs %11.2fs\n", "mean job completion",
		spark.MeanJCT(), cust.MeanJCT())
	fmt.Printf("%-22s %11.2fs %11.2fs\n", "mean input stage",
		spark.MeanInputStageSec(), cust.MeanInputStageSec())
	fmt.Printf("%-22s %11.3fs %11.3fs\n", "mean scheduler delay",
		spark.MeanSchedulerDelay(), cust.MeanSchedulerDelay())

	gain := (cust.MeanLocality() - spark.MeanLocality()) / spark.MeanLocality() * 100
	fmt.Printf("\nCustody improves input-task locality by %.1f%% on this run.\n", gain)
}
