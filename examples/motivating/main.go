// Motivating examples: the paper's worked micro-examples (Figures 1, 3, and
// 4–5) executed through the public allocation API.
//
// Run with:
//
//	go run ./examples/motivating
package main

import (
	"fmt"

	"repro/custody"
)

func main() {
	fig1()
	fig3()
	fig4()
}

// fig1 is §II-B: four workers each storing one block; two applications,
// each with one job of two input tasks. A data-unaware manager strands half
// the tasks; Custody reaches 100% locality.
func fig1() {
	fmt.Println("Fig. 1 — data-aware vs data-unaware executor allocation")
	apps := []custody.AppDemand{
		{App: 1, Budget: 2, Jobs: []custody.JobDemand{{
			Job: 1, Tasks: []custody.TaskDemand{
				{Task: 1, Block: 0, Nodes: []int{0}}, // T1 reads D1 on W1
				{Task: 2, Block: 1, Nodes: []int{1}}, // T2 reads D2 on W2
			}}}},
		{App: 2, Budget: 2, Jobs: []custody.JobDemand{{
			Job: 1, Tasks: []custody.TaskDemand{
				{Task: 1, Block: 2, Nodes: []int{2}}, // T21 reads D3 on W3
				{Task: 2, Block: 3, Nodes: []int{3}}, // T22 reads D4 on W4
			}}}},
	}
	idle := []custody.ExecInfo{{ID: 0, Node: 0}, {ID: 1, Node: 1}, {ID: 2, Node: 2}, {ID: 3, Node: 3}}
	plan := custody.Allocate(apps, idle, custody.DefaultAllocateOptions())
	byApp := plan.ByApp()
	fmt.Printf("  app A1 ← executors %v, app A2 ← executors %v\n", byApp[1], byApp[2])
	fmt.Printf("  local assignments: %d/4 (data-unaware round-robin achieves 2/4)\n\n", plan.LocalCount())
}

// fig3 is §IV-A: two applications, each with two single-task jobs, all
// contending for the two "hot" executors. Locality-aware fairness gives each
// application one local job instead of letting one app take both.
func fig3() {
	fmt.Println("Fig. 3 — naive fairness vs locality-aware fairness")
	mk := func(id int) custody.AppDemand {
		return custody.AppDemand{App: id, Budget: 2, Jobs: []custody.JobDemand{
			{Job: id*10 + 1, Tasks: []custody.TaskDemand{{Task: 1, Block: 0, Nodes: []int{0}}}},
			{Job: id*10 + 2, Tasks: []custody.TaskDemand{{Task: 1, Block: 1, Nodes: []int{1}}}},
		}}
	}
	apps := []custody.AppDemand{mk(3), mk(4)}
	idle := []custody.ExecInfo{{ID: 0, Node: 0}, {ID: 1, Node: 1}, {ID: 2, Node: 2}, {ID: 3, Node: 3}}
	plan := custody.Allocate(apps, idle, custody.DefaultAllocateOptions())
	local := map[int]int{}
	for _, a := range plan.Assignments {
		if a.Local {
			local[a.App]++
		}
	}
	fmt.Printf("  local jobs: A3=%d, A4=%d (naive fairness could give 2 and 0)\n\n", local[3], local[4])
}

// fig4 is §IV-B: one application, two jobs of two tasks each, but only two
// executors in the budget. The priority rule satisfies Job 1 completely;
// spreading fairly would leave both jobs straggling (Fig. 5: average
// completion 1.25 vs 2 time units).
func fig4() {
	fmt.Println("Fig. 4/5 — priority vs fairness inside an application")
	apps := []custody.AppDemand{{App: 5, Budget: 2, Jobs: []custody.JobDemand{
		{Job: 1, Tasks: []custody.TaskDemand{
			{Task: 1, Block: 0, Nodes: []int{0}},
			{Task: 2, Block: 1, Nodes: []int{1}},
		}},
		{Job: 2, Tasks: []custody.TaskDemand{
			{Task: 1, Block: 2, Nodes: []int{2}},
			{Task: 2, Block: 3, Nodes: []int{3}},
		}},
	}}}
	idle := []custody.ExecInfo{{ID: 0, Node: 0}, {ID: 1, Node: 1}, {ID: 2, Node: 2}, {ID: 3, Node: 3}}
	plan := custody.Allocate(apps, idle, custody.DefaultAllocateOptions())
	perJob := map[int]int{}
	for _, a := range plan.Assignments {
		if a.Local {
			perJob[a.Job]++
		}
	}
	avg := avgUnits(perJob, map[int]int{1: 2, 2: 2})
	fmt.Printf("  local tasks per job under priority: job1=%d/2, job2=%d/2\n", perJob[1], perJob[2])
	fmt.Printf("  stylized average completion: %.2f time units (fairness-based: 2.00)\n", avg)
}

// avgUnits applies the paper's Fig. 5 cost model: a local task finishes in
// 0.5 time units, a network fetch takes 2 — so a fully local job completes
// in 0.5 units and a straggling job in 2.
func avgUnits(local, total map[int]int) float64 {
	sum, n := 0.0, 0
	for j, tot := range total {
		n++
		if local[j] == tot {
			sum += 0.5
		} else {
			sum += 2
		}
	}
	return sum / float64(n)
}
