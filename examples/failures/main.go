// Failures: inject node failures mid-run, watch the system recover, and
// export the execution timeline for analysis.
//
// Run with:
//
//	go run ./examples/failures
package main

import (
	"fmt"
	"log"
	"os"

	"repro/custody"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	rec := trace.NewRecorder()
	cfg := custody.Config{
		Nodes:   30,
		Seed:    11,
		Manager: custody.ManagerCustody,
	}
	sim := custody.NewSimulationTraced(cfg, rec)

	input, err := sim.CreateInput("warehouse/events", 4<<30)
	if err != nil {
		log.Fatal(err)
	}
	a := sim.RegisterApp("etl")
	sim.Start()
	for i := 0; i < 6; i++ {
		sim.SubmitJobAt(float64(i)*5+1, a, custody.BuildJob("Sort", i+1, input))
	}

	// Two nodes die mid-run; one comes back.
	sim.FailNodeAt(8.0, 4)
	sim.FailNodeAt(14.0, 12)
	sim.RecoverNodeAt(25.0, 4)

	col := sim.Run()

	fmt.Printf("completed %d/%d jobs through 2 node failures\n", len(col.Jobs), 6)
	fmt.Printf("mean JCT %.2fs, locality %.3f\n",
		metrics.Summarize(col.JobCompletionTimes()).Mean,
		metrics.Summarize(col.LocalityPerJob()).Mean)

	retried := 0
	for _, j := range a.Jobs {
		for _, s := range j.Stages {
			for _, t := range s.Tasks {
				if t.Attempts > 1 {
					retried++
				}
			}
		}
	}
	fmt.Printf("tasks re-executed after failures: %d\n", retried)
	fmt.Printf("timeline: %d events (%d allocations, %d launches, %d node events)\n",
		len(rec.Events), rec.Count(trace.ExecAlloc),
		rec.Count(trace.TaskLaunch), rec.Count(trace.NodeFail)+rec.Count(trace.NodeRecover))
	fmt.Printf("cluster utilization over the run: %.3f\n", rec.Utilization(cfg.TotalSlots()))

	f, err := os.CreateTemp("", "custody-trace-*.csv")
	if err != nil {
		log.Fatal(err)
	}
	err = rec.WriteCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full trace written to %s\n", f.Name())
}
