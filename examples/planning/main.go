// Planning: use the paper's theory machinery for capacity planning — given
// a demand snapshot, how many executors does each application need before
// full locality is even *possible*? The fractional maximum-concurrent-flow
// bound (§III-B) answers this before running anything, and the Fig. 2
// network's structure shows exactly which tasks can never be local.
//
// Run with:
//
//	go run ./examples/planning
package main

import (
	"fmt"

	"repro/custody"
	"repro/internal/xrand"
)

func main() {
	rng := xrand.New(99)
	const nodes = 20

	// Demand: two analytics teams, each with a batch of jobs whose blocks
	// are scattered over the cluster.
	var apps []custody.AppDemand
	block := 0
	for a := 0; a < 2; a++ {
		ad := custody.AppDemand{App: a, Budget: nodes}
		for j := 0; j < 3; j++ {
			jd := custody.JobDemand{Job: j}
			for k := 0; k < 4; k++ {
				jd.Tasks = append(jd.Tasks, custody.TaskDemand{
					Task: k, Block: custody.BlockID(block),
					Nodes: rng.Sample(nodes, 3), // 3 replicas each
				})
				block++
			}
			ad.Jobs = append(ad.Jobs, jd)
		}
		apps = append(apps, ad)
	}

	// Sweep the executor pool size: how much capacity is needed before the
	// fractional bound (an upper limit on ANY allocator) reaches 1.0, and
	// how much before Custody's heuristic actually delivers it?
	fmt.Println("executors   λ* (fractional bound)   Custody min-local-task fraction")
	for pool := 4; pool <= nodes; pool += 4 {
		var idle []custody.ExecInfo
		for i := 0; i < pool; i++ {
			idle = append(idle, custody.ExecInfo{ID: i, Node: i * nodes / pool})
		}
		bound := custody.FractionalMaxMin(apps, idle, 1e-3)

		plan := custody.Allocate(apps, idle, custody.AllocateOptions{})
		perApp := map[int]int{}
		for _, as := range plan.Assignments {
			if as.Local {
				perApp[as.App]++
			}
		}
		worst := 1.0
		for _, a := range apps {
			total := 0
			for _, j := range a.Jobs {
				total += len(j.Tasks)
			}
			frac := float64(perApp[a.App]) / float64(total)
			if frac < worst {
				worst = frac
			}
		}
		fmt.Printf("%9d %22.3f %33.3f\n", pool, bound, worst)
	}

	// Diagnose structural gaps with the Fig. 2 network.
	var idle []custody.ExecInfo
	for i := 0; i < nodes; i += 2 { // executors only on even nodes
		idle = append(idle, custody.ExecInfo{ID: i, Node: i})
	}
	net := custody.BuildLocalityNetwork(apps, idle)
	fmt.Printf("\nwith executors on even nodes only: %d/%d tasks have no local option:\n",
		len(net.UnservableTasks()), net.Tasks())
	for _, label := range net.UnservableTasks() {
		fmt.Printf("  %s (all replicas on odd nodes)\n", label)
	}
	fmt.Println("\n(render the full network with Graphviz: custody.BuildLocalityNetwork(...).DOT())")
}
