// Workloads: drive the simulator directly — custom input files, custom job
// DAGs, several applications with different workload kinds sharing one
// cluster, and per-application fairness reporting.
//
// Run with:
//
//	go run ./examples/workloads
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/custody"
	"repro/internal/metrics"
)

func main() {
	sim := custody.NewSimulation(custody.Config{
		Nodes:   40,
		Seed:    7,
		Manager: custody.ManagerCustody,
	})

	// Pre-load a shared dataset: one hot file everyone reads and two
	// private ones.
	hot, err := sim.CreateInput("shared/wiki-dump", 4<<30)
	if err != nil {
		log.Fatal(err)
	}
	logsA, err := sim.CreateInput("teamA/clickstream", 2<<30)
	if err != nil {
		log.Fatal(err)
	}
	logsB, err := sim.CreateInput("teamB/events", 1<<30)
	if err != nil {
		log.Fatal(err)
	}

	// Three applications with different analytic styles.
	search := sim.RegisterApp("search-indexing") // WordCount-style scans
	etl := sim.RegisterApp("nightly-etl")        // Sort-style shuffles
	graph := sim.RegisterApp("link-analysis")    // PageRank-style iterations
	sim.Start()

	// Interleaved submissions over ~40 simulated seconds.
	id := 0
	for i := 0; i < 4; i++ {
		id++
		sim.SubmitJobAt(float64(i)*10+1, search, custody.BuildJob("WordCount", id, hot))
		id++
		sim.SubmitJobAt(float64(i)*10+3, etl, custody.BuildJob("Sort", id, logsA))
		id++
		sim.SubmitJobAt(float64(i)*10+5, graph, custody.BuildJob("PageRank", id, logsB))
	}

	col := sim.Run()

	fmt.Printf("completed %d jobs across 3 applications on a 40-node cluster\n\n", len(col.Jobs))
	fmt.Printf("%-12s %10s %12s %12s\n", "workload", "locality", "meanJCT(s)", "input(s)")
	perWL := col.PerWorkload()
	names := make([]string, 0, len(perWL))
	for name := range perWL {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := perWL[name]
		fmt.Printf("%-12s %9.3f %11.2f %11.2f\n", name,
			metrics.Summarize(c.LocalityPerJob()).Mean,
			metrics.Summarize(c.JobCompletionTimes()).Mean,
			metrics.Summarize(c.InputStageTimes()).Mean)
	}
	fmt.Printf("\nfairness: min-app local-job fraction %.3f, Jain index %.3f\n",
		col.MinAppLocality(), col.JainFairness())
	fmt.Printf("allocator activity: %d reallocation rounds, %d executor migrations\n",
		col.Reallocations, col.ExecutorMigrations)
}
