// Ablation: compare Custody's greedy intra-application allocation
// (Algorithm 2, a 2-approximation) against the exact optimum and the
// fractional maximum-concurrent-flow upper bound of §III on a randomized
// contended scenario.
//
// Run with:
//
//	go run ./examples/ablation
package main

import (
	"fmt"

	"repro/custody"
	"repro/internal/xrand"
)

func main() {
	rng := xrand.New(2026)
	const nodes = 16

	var idle []custody.ExecInfo
	for n := 0; n < nodes; n++ {
		idle = append(idle, custody.ExecInfo{ID: n, Node: n})
	}

	// One application, five jobs of varying widths, replicas on 1–2 nodes.
	var jobs []custody.JobDemand
	block := 0
	for j := 0; j < 5; j++ {
		jd := custody.JobDemand{Job: j}
		width := rng.IntRange(1, 5)
		for k := 0; k < width; k++ {
			jd.Tasks = append(jd.Tasks, custody.TaskDemand{
				Task: k, Block: custody.BlockID(block), Nodes: rng.Sample(nodes, rng.IntRange(1, 2)),
			})
			block++
		}
		jobs = append(jobs, jd)
	}
	budget := block/2 + 1

	fmt.Printf("instance: %d tasks in 5 jobs, %d executors, budget σ=%d\n\n", block, nodes, budget)

	// Greedy (Algorithm 2) via the public allocator.
	plan := custody.Allocate(
		[]custody.AppDemand{{App: 0, Budget: budget, Jobs: jobs}},
		idle, custody.AllocateOptions{})
	perJob := map[int]int{}
	greedyObj := 0.0
	for _, a := range plan.Assignments {
		if a.Local {
			perJob[a.Job]++
		}
	}
	localJobs := 0
	for _, jd := range jobs {
		greedyObj += float64(perJob[jd.Job]) / float64(len(jd.Tasks))
		if perJob[jd.Job] == len(jd.Tasks) {
			localJobs++
		}
	}

	opt := custody.OptimalIntraObjective(jobs, idle, budget)
	frac := custody.FractionalMaxMin(
		[]custody.AppDemand{{App: 0, Budget: budget, Jobs: jobs}}, idle, 1e-4)

	fmt.Printf("greedy objective (Σ local/µ): %.3f   perfectly local jobs: %d/5\n", greedyObj, localJobs)
	fmt.Printf("optimal objective:            %.3f\n", opt)
	fmt.Printf("greedy/optimal ratio:         %.3f  (2-approximation guarantees ≥ 0.500)\n", greedyObj/opt)
	fmt.Printf("fractional max-min bound λ*:  %.3f  (no allocation can beat this)\n", frac)
}
